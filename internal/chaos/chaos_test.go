package chaos

import (
	"bufio"
	"bytes"
	"io"
	"math/bits"
	"net"
	"reflect"
	"testing"
	"time"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

func pollingHdr() packet.PollingHeader {
	return packet.PollingHeader{Flag: packet.FlagBoth, DiagID: 7, HopsLow: 4}
}

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "poll-loss=0.2,poll-dup=0.05,tel-loss=0.3,meter-corrupt=0.02," +
		"status-corrupt=0.04,collect-drop=0.1,collect-lag=2ms," +
		"flap=1/2@500us+300us,bw=0/1@100us+1ms*0.25"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.PollLoss != 0.2 || s.PollDup != 0.05 || s.TelemetryEpochLoss != 0.3 {
		t.Fatalf("probabilities mis-parsed: %+v", s)
	}
	if s.CollectLagMax != 2*sim.Millisecond {
		t.Fatalf("collect-lag = %v", s.CollectLagMax)
	}
	if len(s.LinkFlaps) != 1 || s.LinkFlaps[0] != (LinkFlap{Node: 1, Port: 2, At: 500 * sim.Microsecond, Duration: 300 * sim.Microsecond}) {
		t.Fatalf("flap mis-parsed: %+v", s.LinkFlaps)
	}
	if len(s.BWDegrades) != 1 || s.BWDegrades[0].Factor != 0.25 {
		t.Fatalf("bw mis-parsed: %+v", s.BWDegrades)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// String() must render back into the grammar and re-parse to the same
	// schedule (the determinism contract for logged run configs).
	s2, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip changed schedule:\n  %+v\n  %+v", s, s2)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	for _, spec := range []string{"", "none", "  "} {
		s, err := ParseSchedule(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if !s.IsZero() {
			t.Fatalf("%q parsed non-empty: %+v", spec, s)
		}
		if got := s.String(); got != "none" {
			t.Fatalf("empty schedule renders %q", got)
		}
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, spec := range []string{
		"poll-loss=1.5",        // probability out of range
		"poll-loss",            // not key=value
		"frobnicate=1",         // unknown fault
		"collect-lag=fast",     // bad duration
		"flap=1@500us+300us",   // missing port
		"flap=1/2@500us",       // missing duration
		"bw=0/1@100us+1ms",     // missing factor
		"bw=0/1@100us+1ms*1.5", // factor out of range
	} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("%q parsed without error", spec)
		}
	}
}

func TestValidateRejectsBadWindows(t *testing.T) {
	s := &Schedule{LinkFlaps: []LinkFlap{{Node: 1, Port: 0, At: 0, Duration: 0}}}
	if err := s.Validate(); err == nil {
		t.Error("zero-duration flap validated")
	}
	s = &Schedule{BWDegrades: []BWDegrade{{Node: 1, Port: 0, Duration: sim.Millisecond, Factor: 1.2}}}
	if err := s.Validate(); err == nil {
		t.Error("factor>1 degrade validated")
	}
}

// TestEngineDeterminism: the same seed and schedule must reproduce the
// same decision sequence, and each fault channel must be independent —
// drawing heavily from one channel's stream must not shift another's.
func TestEngineDeterminism(t *testing.T) {
	sched := Schedule{PollLoss: 0.3, PollDup: 0.1, TelemetryEpochLoss: 0.4, CollectDrop: 0.2}
	a := NewEngine(sched, 42)
	b := NewEngine(sched, 42)
	for i := 0; i < 500; i++ {
		if a.DropPolling(1, pollingHdr()) != b.DropPolling(1, pollingHdr()) {
			t.Fatalf("poll decision diverged at %d", i)
		}
		if a.DropEpoch(1, i%4) != b.DropEpoch(1, i%4) {
			t.Fatalf("epoch decision diverged at %d", i)
		}
		if a.DropDelivery(1) != b.DropDelivery(1) {
			t.Fatalf("delivery decision diverged at %d", i)
		}
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters diverged:\n  %v\n  %v", a.Counters, b.Counters)
	}
	if a.Counters.PollingDropped == 0 || a.Counters.EpochsDropped == 0 || a.Counters.DeliveriesDropped == 0 {
		t.Fatalf("expected all channels to fire: %v", a.Counters)
	}

	// Channel independence: c consumes the polling stream 1000 extra
	// times; its telemetry decisions must still match d's exactly.
	c := NewEngine(sched, 7)
	d := NewEngine(sched, 7)
	for i := 0; i < 1000; i++ {
		c.DropPolling(2, pollingHdr())
	}
	for i := 0; i < 200; i++ {
		if c.DropEpoch(2, i%4) != d.DropEpoch(2, i%4) {
			t.Fatalf("tel stream perturbed by poll stream at %d", i)
		}
	}
}

func TestCorruptMeterBoundsAndZeroFilter(t *testing.T) {
	e := NewEngine(Schedule{MeterCorrupt: 1}, 3)
	zeroed := 0
	for i := 0; i < 300; i++ {
		rec := telemetry.MeterRecord{InPort: 0, OutPort: 1, Bytes: 1000}
		if !e.CorruptMeter(1, &rec) {
			t.Fatal("MeterCorrupt=1 did not corrupt")
		}
		if rec.Bytes > 2000 {
			t.Fatalf("corrupted bytes %d outside [0, 2*orig]", rec.Bytes)
		}
		if rec.Bytes == 0 {
			zeroed++
		}
	}
	if zeroed == 0 {
		t.Error("corruption never zeroed a record; evidence-erasure path untested")
	}
	if e.Counters.MetersCorrupted != 300 {
		t.Fatalf("MetersCorrupted = %d", e.Counters.MetersCorrupted)
	}
}

func TestCorruptStatusModes(t *testing.T) {
	e := NewEngine(Schedule{StatusCorrupt: 1}, 11)
	wiped, fabricated := 0, 0
	for i := 0; i < 300; i++ {
		st := telemetry.PortStatus{Port: 1, PausedUntil: 100, QdepthBytes: 5000}
		if !e.CorruptStatus(1, &st) {
			t.Fatal("StatusCorrupt=1 did not corrupt")
		}
		if st.PausedUntil == 0 && st.QdepthBytes == 0 {
			wiped++
		} else if st.PausedUntil == 100 {
			fabricated++
		}
	}
	if wiped == 0 || fabricated == 0 {
		t.Fatalf("expected both corruption modes: wiped=%d fabricated=%d", wiped, fabricated)
	}
}

// TestInstallSmoke wires the engine into a real system, runs the incast
// scenario under a hostile schedule, and checks every channel fired and
// diagnosis still completes.
func TestInstallSmoke(t *testing.T) {
	d, err := topo.NewChain(3, 5, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	cfg := core.DefaultConfig()
	cfg.Collect.BaseLatency = 200 * sim.Microsecond
	cfg.Collect.PerEpochLatency = 50 * sim.Microsecond
	sched, err := ParseSchedule("poll-loss=0.3,tel-loss=0.4,meter-corrupt=0.2,status-corrupt=0.2,collect-drop=0.3,collect-lag=100us,flap=1/1@200us+300us,bw=1/0@1ms+2ms*0.5")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.Install(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Install(cl, sys, *sched, 99)
	if err != nil {
		t.Fatal(err)
	}

	cl.StartFlow(d.HostsAt[0][0], d.HostsAt[1][0], 1_200_000, 0)
	cl.StartFlow(d.HostsAt[0][1], d.HostsAt[2][0], 1_500_000, 0)
	cl.StartFlow(d.HostsAt[0][2], d.HostsAt[2][1], 1_500_000, 0)
	for _, start := range []sim.Time{132 * sim.Microsecond, 394 * sim.Microsecond} {
		for i := 1; i < 5; i++ {
			cl.StartFlow(d.HostsAt[2][i], d.HostsAt[2][0], 128_000, start)
		}
	}
	cl.Run(20 * sim.Millisecond)
	results := sys.DiagnoseAll()
	t.Logf("chaos counters: %v; %d diagnoses", eng.Counters, len(results))

	c := eng.Counters
	if c.EpochsDropped == 0 || c.MetersCorrupted == 0 || c.StatusCorrupted == 0 {
		t.Errorf("telemetry channels silent: %v", c)
	}
	if c.LinkFlaps != 1 {
		t.Errorf("LinkFlaps = %d, want 1", c.LinkFlaps)
	}
	if c.BWChanges != 2 {
		t.Errorf("BWChanges = %d, want 2 (degrade + restore)", c.BWChanges)
	}
	if cl.Net.FaultDrops == 0 {
		t.Errorf("link flap dropped no packets")
	}
	// The run must still produce *some* diagnosis output path without
	// panicking; degraded-quality assertions live in internal/experiments.
	stats := sys.Collector.Stats()
	if stats.Collections > 0 && stats.DroppedDeliveries == 0 {
		t.Errorf("collect-drop=0.3 over %d collections dropped nothing", stats.Collections)
	}
	if stats.Delivered()+stats.DroppedDeliveries != stats.Collections {
		t.Errorf("delivery accounting broken: %+v", stats)
	}
}

func TestInstallRejectsInvalidSchedule(t *testing.T) {
	d, err := topo.NewChain(2, 1, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	sys, err := core.Install(cl, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(cl, sys, Schedule{PollLoss: 2}, 1); err == nil {
		t.Fatal("invalid schedule installed")
	}
}

// TestFlakyProxyResets: the proxy must RST-abort the first N connections
// and then pass traffic through untouched.
func TestFlakyProxyResets(t *testing.T) {
	backend, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	go func() {
		for {
			c, err := backend.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := c.Write([]byte(line)); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	p, err := NewFlakyProxy("127.0.0.1:0", backend.Addr().String(), FlakyConfig{ResetFirst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	echo := func() error {
		c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
		if err != nil {
			return err
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Write([]byte("ping\n")); err != nil {
			return err
		}
		line, err := bufio.NewReader(c).ReadString('\n')
		if err != nil {
			return err
		}
		if line != "ping\n" {
			t.Fatalf("echoed %q", line)
		}
		return nil
	}

	failures := 0
	for i := 0; i < 2; i++ {
		if err := echo(); err != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("first two connections: %d failures, want 2", failures)
	}
	if err := echo(); err != nil {
		t.Fatalf("third connection should pass: %v", err)
	}
	if p.Resets() != 2 {
		t.Fatalf("Resets = %d, want 2", p.Resets())
	}
}

// TestFlakyProxyCorruptsChunks: with CorruptEveryNth set, forwarded
// data arrives altered — exactly one bit per due chunk — and the same
// seed flips the same bits, so a corruption-triggered failure replays.
func TestFlakyProxyCorruptsChunks(t *testing.T) {
	run := func(seed uint64) []byte {
		backend, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer backend.Close()
		got := make(chan []byte, 1)
		go func() {
			c, err := backend.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			b, _ := io.ReadAll(c)
			got <- b
		}()

		p, err := NewFlakyProxy("127.0.0.1:0", backend.Addr().String(),
			FlakyConfig{CorruptEveryNth: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()

		c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sent := bytes.Repeat([]byte("telemetry frame bytes "), 8)
		if _, err := c.Write(sent); err != nil {
			t.Fatal(err)
		}
		c.Close()
		select {
		case b := <-got:
			if len(b) != len(sent) {
				t.Fatalf("forwarded %d bytes, want %d", len(b), len(sent))
			}
			if bytes.Equal(b, sent) {
				t.Fatal("CorruptEveryNth=1 forwarded the stream untouched")
			}
			if p.Corruptions() == 0 {
				t.Fatal("Corruptions() = 0 after a corrupted chunk")
			}
			diff := 0
			for i := range b {
				diff += bits.OnesCount8(b[i] ^ sent[i])
			}
			if diff != p.Corruptions() {
				t.Fatalf("%d bits flipped across %d corruptions, want one bit each", diff, p.Corruptions())
			}
			return b
		case <-time.After(2 * time.Second):
			t.Fatal("backend never saw the stream")
		}
		return nil
	}

	a, b := run(42), run(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if c := run(43); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	// No jitter: pure capped exponential.
	for attempt, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	} {
		if got := Jitter(nil, base, max, attempt, 0); got != want {
			t.Fatalf("attempt %d: %v, want %v", attempt, got, want)
		}
	}
	// Jittered delays stay within ±frac and replay identically per seed.
	a, b := sim.NewRand(5), sim.NewRand(5)
	for attempt := 0; attempt < 6; attempt++ {
		da := Jitter(a, base, max, attempt, 0.2)
		db := Jitter(b, base, max, attempt, 0.2)
		if da != db {
			t.Fatalf("jitter not deterministic at attempt %d", attempt)
		}
		nominal := Jitter(nil, base, max, attempt, 0)
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if da < lo || da > hi {
			t.Fatalf("attempt %d: %v outside [%v, %v]", attempt, da, lo, hi)
		}
	}
}

// Package chaos is the deterministic fault-injection subsystem: a
// seed-driven engine that composes schedules of faults across every
// layer of the Hawkeye pipeline — link flaps and bandwidth degradation
// on the fabric, epoch-ring loss and register corruption in the switch
// telemetry, report-batch drops and controller lag in the collection
// path, and polling-packet loss/duplication in the data plane. The point
// is not to break the simulated network (scenarios already do that) but
// to break Hawkeye's *own* diagnosis plumbing, and measure what the
// diagnosis says when its inputs lie: the degraded-mode confidence and
// missing-evidence machinery in internal/provenance and
// internal/diagnosis is exercised exclusively through this package.
//
// Everything is deterministic: one engine seed forks an independent
// xorshift stream per fault channel, so the same seed plus the same
// schedule reproduces the same faults — and therefore byte-identical
// diagnosis output — on every run.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// LinkFlap takes the link attached to (Node, Port) down at At for
// Duration. Both directions of the link go dark: packets in either
// direction vanish on the wire for the window.
type LinkFlap struct {
	Node     topo.NodeID
	Port     int
	At       sim.Time
	Duration sim.Time
}

// BWDegrade derates the link attached to (Node, Port) to Factor of its
// nominal serialization rate from At for Duration (both directions).
type BWDegrade struct {
	Node     topo.NodeID
	Port     int
	At       sim.Time
	Duration sim.Time
	Factor   float64
}

// Schedule is one composed fault scenario. The zero value injects
// nothing; fields compose freely.
type Schedule struct {
	// PollLoss is the per-hop polling-packet loss probability.
	PollLoss float64
	// PollDup is the per-hop polling-packet duplication probability.
	PollDup float64
	// TelemetryEpochLoss is the per-epoch probability that a ring slot
	// is lost from a snapshot (epoch-ring read failure).
	TelemetryEpochLoss float64
	// MeterCorrupt is the per-record probability that a causality-meter
	// register reads back corrupted.
	MeterCorrupt float64
	// StatusCorrupt is the per-register probability that a PFC status
	// block reads back corrupted.
	StatusCorrupt float64
	// CollectDrop is the per-delivery probability that a report batch is
	// lost between the switch CPU and the analyzer.
	CollectDrop float64
	// CollectLagMax adds uniform extra controller lag in [0, max] to
	// each delivery.
	CollectLagMax sim.Time
	// HostReportLoss is the per-host probability that a host-agent
	// counter snapshot never reaches the analyzer.
	HostReportLoss float64
	// HostReportCorrupt is the per-host probability that a host-agent
	// snapshot arrives corrupted (rejected or clamped at admission).
	HostReportCorrupt float64
	// LinkFlaps and BWDegrades are explicitly scheduled fabric faults.
	LinkFlaps  []LinkFlap
	BWDegrades []BWDegrade
}

// IsZero reports whether the schedule injects nothing.
func (s *Schedule) IsZero() bool {
	return s.PollLoss == 0 && s.PollDup == 0 && s.TelemetryEpochLoss == 0 &&
		s.MeterCorrupt == 0 && s.StatusCorrupt == 0 && s.CollectDrop == 0 &&
		s.CollectLagMax == 0 && s.HostReportLoss == 0 && s.HostReportCorrupt == 0 &&
		len(s.LinkFlaps) == 0 && len(s.BWDegrades) == 0
}

// Validate checks probability ranges and fault windows.
func (s *Schedule) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"poll-loss", s.PollLoss}, {"poll-dup", s.PollDup},
		{"tel-loss", s.TelemetryEpochLoss}, {"meter-corrupt", s.MeterCorrupt},
		{"status-corrupt", s.StatusCorrupt}, {"collect-drop", s.CollectDrop},
		{"host-loss", s.HostReportLoss}, {"host-corrupt", s.HostReportCorrupt},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s=%g outside [0,1]", p.name, p.v)
		}
	}
	if s.CollectLagMax < 0 {
		return fmt.Errorf("chaos: negative collect-lag")
	}
	for _, f := range s.LinkFlaps {
		if f.Duration <= 0 {
			return fmt.Errorf("chaos: flap on node %d port %d has no duration", f.Node, f.Port)
		}
	}
	for _, d := range s.BWDegrades {
		if d.Duration <= 0 || d.Factor <= 0 || d.Factor >= 1 {
			return fmt.Errorf("chaos: bw degrade on node %d port %d needs duration and factor in (0,1)", d.Node, d.Port)
		}
	}
	return nil
}

// String renders the schedule in the spec grammar ParseSchedule accepts.
func (s *Schedule) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("poll-loss", s.PollLoss)
	add("poll-dup", s.PollDup)
	add("tel-loss", s.TelemetryEpochLoss)
	add("meter-corrupt", s.MeterCorrupt)
	add("status-corrupt", s.StatusCorrupt)
	add("collect-drop", s.CollectDrop)
	add("host-loss", s.HostReportLoss)
	add("host-corrupt", s.HostReportCorrupt)
	if s.CollectLagMax > 0 {
		parts = append(parts, fmt.Sprintf("collect-lag=%dus", int64(s.CollectLagMax/sim.Microsecond)))
	}
	for _, f := range s.LinkFlaps {
		parts = append(parts, fmt.Sprintf("flap=%d/%d@%dus+%dus", f.Node, f.Port,
			int64(f.At/sim.Microsecond), int64(f.Duration/sim.Microsecond)))
	}
	for _, d := range s.BWDegrades {
		parts = append(parts, fmt.Sprintf("bw=%d/%d@%dus+%dus*%g", d.Node, d.Port,
			int64(d.At/sim.Microsecond), int64(d.Duration/sim.Microsecond), d.Factor))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses the compact comma-separated fault spec used by
// --chaos flags:
//
//	poll-loss=0.2          polling-packet loss probability
//	poll-dup=0.05          polling-packet duplication probability
//	tel-loss=0.3           per-epoch snapshot loss probability
//	meter-corrupt=0.05     causality-meter corruption probability
//	status-corrupt=0.05    PFC status register corruption probability
//	collect-drop=0.1       report-batch drop probability
//	collect-lag=2ms        max extra controller lag per delivery
//	host-loss=0.2          host-agent snapshot loss probability
//	host-corrupt=0.1       host-agent snapshot corruption probability
//	flap=N/P@T+D           link (node N, port P) down at T for D
//	bw=N/P@T+D*F           link derated to factor F at T for D
//
// Durations use Go syntax (500us, 2ms). flap and bw may repeat.
// "none" or "" parses to the empty schedule.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return s, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", item)
		}
		var err error
		switch key {
		case "poll-loss":
			s.PollLoss, err = parseProb(val)
		case "poll-dup":
			s.PollDup, err = parseProb(val)
		case "tel-loss":
			s.TelemetryEpochLoss, err = parseProb(val)
		case "meter-corrupt":
			s.MeterCorrupt, err = parseProb(val)
		case "status-corrupt":
			s.StatusCorrupt, err = parseProb(val)
		case "collect-drop":
			s.CollectDrop, err = parseProb(val)
		case "collect-lag":
			s.CollectLagMax, err = parseDuration(val)
		case "host-loss":
			s.HostReportLoss, err = parseProb(val)
		case "host-corrupt":
			s.HostReportCorrupt, err = parseProb(val)
		case "flap":
			var f LinkFlap
			f, err = parseFlap(val)
			s.LinkFlaps = append(s.LinkFlaps, f)
		case "bw":
			var d BWDegrade
			d, err = parseBW(val)
			s.BWDegrades = append(s.BWDegrades, d)
		default:
			return nil, fmt.Errorf("chaos: unknown fault %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: %s: %w", key, err)
		}
	}
	sortFaults(s)
	return s, nil
}

// sortFaults orders scheduled fabric faults by time then node/port so a
// schedule assembled in any order installs identically.
func sortFaults(s *Schedule) {
	sort.Slice(s.LinkFlaps, func(i, j int) bool {
		a, b := s.LinkFlaps[i], s.LinkFlaps[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Port < b.Port
	})
	sort.Slice(s.BWDegrades, func(i, j int) bool {
		a, b := s.BWDegrades[i], s.BWDegrades[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Port < b.Port
	})
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

func parseDuration(v string) (sim.Time, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// parseFlap parses N/P@T+D.
func parseFlap(v string) (LinkFlap, error) {
	node, port, rest, err := parsePortRef(v)
	if err != nil {
		return LinkFlap{}, err
	}
	at, dur, rest, err := parseWindow(rest)
	if err != nil {
		return LinkFlap{}, err
	}
	if rest != "" {
		return LinkFlap{}, fmt.Errorf("trailing %q", rest)
	}
	return LinkFlap{Node: node, Port: port, At: at, Duration: dur}, nil
}

// parseBW parses N/P@T+D*F.
func parseBW(v string) (BWDegrade, error) {
	node, port, rest, err := parsePortRef(v)
	if err != nil {
		return BWDegrade{}, err
	}
	at, dur, rest, err := parseWindow(rest)
	if err != nil {
		return BWDegrade{}, err
	}
	factorStr, ok := strings.CutPrefix(rest, "*")
	if !ok {
		return BWDegrade{}, fmt.Errorf("missing *factor in %q", v)
	}
	factor, err := strconv.ParseFloat(factorStr, 64)
	if err != nil {
		return BWDegrade{}, err
	}
	if factor <= 0 || factor >= 1 {
		return BWDegrade{}, fmt.Errorf("factor %g outside (0,1)", factor)
	}
	return BWDegrade{Node: node, Port: port, At: at, Duration: dur, Factor: factor}, nil
}

// parsePortRef consumes "N/P" and returns the remainder.
func parsePortRef(v string) (topo.NodeID, int, string, error) {
	nodeStr, rest, ok := strings.Cut(v, "/")
	if !ok {
		return 0, 0, "", fmt.Errorf("missing node/port in %q", v)
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil {
		return 0, 0, "", fmt.Errorf("node in %q: %w", v, err)
	}
	i := strings.IndexAny(rest, "@")
	if i < 0 {
		return 0, 0, "", fmt.Errorf("missing @time in %q", v)
	}
	port, err := strconv.Atoi(rest[:i])
	if err != nil {
		return 0, 0, "", fmt.Errorf("port in %q: %w", v, err)
	}
	return topo.NodeID(node), port, rest[i:], nil
}

// parseWindow consumes "@T+D" and returns the remainder.
func parseWindow(v string) (at, dur sim.Time, rest string, err error) {
	v, ok := strings.CutPrefix(v, "@")
	if !ok {
		return 0, 0, "", fmt.Errorf("missing @time in %q", v)
	}
	plus := strings.Index(v, "+")
	if plus < 0 {
		return 0, 0, "", fmt.Errorf("missing +duration in %q", v)
	}
	if at, err = parseDuration(v[:plus]); err != nil {
		return 0, 0, "", err
	}
	v = v[plus+1:]
	// The duration ends at the next non-duration rune ('*' for bw specs).
	end := strings.IndexAny(v, "*")
	if end < 0 {
		end = len(v)
	}
	if dur, err = parseDuration(v[:end]); err != nil {
		return 0, 0, "", err
	}
	return at, dur, v[end:], nil
}

package chaos

import (
	"flag"
	"testing"
	"time"
)

// -crash.seeds widens the sweep for the recovery-smoke CI job; the
// default keeps `go test ./...` quick.
var crashSeeds = flag.Int("crash.seeds", 4, "crash-restart trial seeds to sweep")

// TestCrashRestartRecovery sweeps seeded crash-restart trials over the
// durable fleet store: every acknowledged record survives every crash
// exactly once, incident IDs never repeat across restarts, torn WAL
// tails are truncated, and replay stays bounded.
func TestCrashRestartRecovery(t *testing.T) {
	for seed := 0; seed < *crashSeeds; seed++ {
		seed := seed
		t.Run(seedName(seed), func(t *testing.T) {
			t.Parallel()
			rep, err := CrashRestart(t.TempDir(), uint64(seed), CrashConfig{})
			if err != nil {
				t.Fatalf("seed %d: %v (%s)", seed, err, rep)
			}
			if rep.Acked == 0 || rep.Replayed == 0 {
				t.Fatalf("seed %d: degenerate trial %s", seed, rep)
			}
			if rep.MaxReplay > 5*time.Second {
				t.Fatalf("seed %d: replay unbounded: %s", seed, rep)
			}
			t.Log(rep)
		})
	}
}

func seedName(seed int) string {
	return "seed" + string(rune('0'+seed/10)) + string(rune('0'+seed%10))
}

// TestCrashRestartCleanShutdownToo pins the boring path: a trial whose
// tears are disabled (clean kills only) must also hold the contract —
// the group-commit flusher must not be load-bearing for durability.
func TestCrashRestartCleanShutdown(t *testing.T) {
	rep, err := CrashRestart(t.TempDir(), 99, CrashConfig{Rounds: 3, MaxTear: 1})
	if err != nil {
		t.Fatalf("%v (%s)", err, rep)
	}
	if rep.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", rep.Rounds)
	}
}

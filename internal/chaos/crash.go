package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Crash-restart harness for the durable fleet store: the process-death
// counterpart of the telemetry fault engine. One trial runs several
// crash cycles over one data directory — admit a seed-chosen batch of
// diagnosis records with synchronous WAL acknowledgement, kill the
// store with no flush, smear seed-chosen torn garbage over the WAL
// tail (the half-written record a real power cut leaves), reopen, and
// check the recovery contract: every acknowledged record is present
// exactly once, incident IDs never repeat across restarts, and replay
// time stays bounded. All randomness comes from forked streams of one
// seed, so a failing trial replays exactly.

// CrashConfig shapes a crash-restart trial. Zero values are
// seed-chosen (rounds, batch sizes, tear lengths) or sane defaults.
type CrashConfig struct {
	// Rounds is the number of crash cycles (0 = seed-chosen 2..4).
	Rounds int
	// MaxBatch bounds the records admitted per round (0 = 60).
	MaxBatch int
	// MaxTear bounds the garbage appended to the WAL tail after each
	// crash, in bytes (0 = 96; one in four crashes is left clean).
	MaxTear int
	// ReplayBound fails the trial if any reopen takes longer
	// (0 = 5s).
	ReplayBound time.Duration
}

// CrashReport summarizes one trial.
type CrashReport struct {
	Rounds int
	// Acked counts records whose Add returned before a crash — the set
	// the recovery contract protects.
	Acked int
	// Replayed counts WAL entries re-admitted across all reopens.
	Replayed int
	// TornBytes counts tail garbage injected and truncated away.
	TornBytes int
	// Incidents is the distinct incident-ID count at the end.
	Incidents int
	// MaxReplay is the slowest reopen.
	MaxReplay time.Duration
}

func (r CrashReport) String() string {
	return fmt.Sprintf("crash: rounds=%d acked=%d replayed=%d torn=%dB incidents=%d maxReplay=%s",
		r.Rounds, r.Acked, r.Replayed, r.TornBytes, r.Incidents, r.MaxReplay)
}

// CrashRestart runs one seeded crash-restart trial in dir (which must
// be empty or a previous trial's directory — every round reopens it).
// It returns an error describing the first recovery-contract violation.
func CrashRestart(dir string, seed uint64, cfg CrashConfig) (CrashReport, error) {
	root := sim.NewRand(seed ^ 0xC4A5C4A5C4A5C4A5)
	rngBatch := root.Fork()
	rngRec := root.Fork()
	rngTear := root.Fork()

	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 2 + rngBatch.Intn(3)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 60
	}
	maxTear := cfg.MaxTear
	if maxTear <= 0 {
		maxTear = 96
	}
	bound := cfg.ReplayBound
	if bound <= 0 {
		bound = 5 * time.Second
	}

	// Small segments and frequent checkpoints so a trial exercises
	// segment rollover, compaction and snapshot+delta recovery, not
	// just single-segment replay. Synchronous appends make Add's
	// return the acknowledgement barrier. The ring must outlast the
	// trial: eviction is legitimate forgetting, which would make the
	// exactly-once check vacuous.
	storeCfg := fleetstore.Config{
		Shards:        4,
		ShardCapacity: 4096,
		ResolvedKeep:  4096,
		SnapshotEvery: 16 + rngBatch.Intn(48),
		SegmentBytes:  4096,
		GroupWindow:   -1,
	}

	var rep CrashReport
	rep.Rounds = rounds
	acked := make(map[string]uint64) // victim key -> seq
	var maxSeq uint64
	seenIDs := make(map[uint64]bool)
	recIdx := 0

	for round := 0; round < rounds; round++ {
		start := time.Now()
		st, err := fleetstore.Open(dir, storeCfg)
		if err != nil {
			return rep, fmt.Errorf("round %d: open: %w", round, err)
		}
		elapsed := time.Since(start)
		if elapsed > rep.MaxReplay {
			rep.MaxReplay = elapsed
		}
		if elapsed > bound {
			st.Abort()
			return rep, fmt.Errorf("round %d: replay took %s, bound %s", round, elapsed, bound)
		}
		rep.Replayed += st.ReplayedRecords()

		// The recovered store must hold exactly the acknowledged set.
		if err := checkAcked(st, acked); err != nil {
			st.Abort()
			return rep, fmt.Errorf("round %d: %w", round, err)
		}
		// Incident IDs present now must never collide with a fresh ID
		// later; remember everything recovered so far.
		for _, inc := range st.Incidents(fleetstore.Query{Node: fleetstore.AnyNode}) {
			seenIDs[inc.ID] = true
		}

		// Admit this round's batch. Every Add that returns is acked:
		// the synchronous WAL made it durable.
		batch := 1 + rngBatch.Intn(maxBatch)
		for i := 0; i < batch; i++ {
			rec := randomRecord(rngRec, recIdx)
			recIdx++
			got := st.Add(rec)
			if got.Seq <= maxSeq {
				st.Abort()
				return rep, fmt.Errorf("round %d: seq %d did not advance past %d across restart",
					round, got.Seq, maxSeq)
			}
			maxSeq = got.Seq
			acked[rec.Victim] = got.Seq
			rep.Acked++
		}

		// Crash: no flush, no final checkpoint — then tear the tail.
		st.Abort()
		if rngTear.Intn(4) != 0 {
			n, err := tearWALTail(dir, rngTear, maxTear)
			if err != nil {
				return rep, fmt.Errorf("round %d: tear: %w", round, err)
			}
			rep.TornBytes += n
		}
	}

	// Final reopen: the full acked set survived every crash, and new
	// incident IDs never reused a recovered one.
	start := time.Now()
	st, err := fleetstore.Open(dir, storeCfg)
	if err != nil {
		return rep, fmt.Errorf("final open: %w", err)
	}
	defer st.Close()
	if elapsed := time.Since(start); elapsed > rep.MaxReplay {
		rep.MaxReplay = elapsed
	}
	rep.Replayed += st.ReplayedRecords()
	if err := checkAcked(st, acked); err != nil {
		return rep, fmt.Errorf("final: %w", err)
	}
	incs := st.Incidents(fleetstore.Query{Node: fleetstore.AnyNode})
	final := make(map[uint64]bool, len(incs))
	for _, inc := range incs {
		if final[inc.ID] {
			return rep, fmt.Errorf("final: duplicate incident ID %d", inc.ID)
		}
		final[inc.ID] = true
	}
	rep.Incidents = len(final)
	// A fresh admission must mint an ID beyond everything ever seen.
	probe := st.Add(randomRecord(rngRec, recIdx))
	if probe.Seq <= maxSeq {
		return rep, fmt.Errorf("final: probe seq %d did not advance past %d", probe.Seq, maxSeq)
	}
	for _, inc := range st.Incidents(fleetstore.Query{Node: fleetstore.AnyNode}) {
		if !final[inc.ID] && seenIDs[inc.ID] {
			return rep, fmt.Errorf("final: new incident reused recovered ID %d", inc.ID)
		}
	}
	return rep, nil
}

// checkAcked verifies the exactly-once recovery contract: each
// acknowledged record is in the store once, with its admitted sequence
// number, and nothing unacknowledged leaked in.
func checkAcked(st *fleetstore.Store, acked map[string]uint64) error {
	recs := st.Records(fleetstore.Query{Node: fleetstore.AnyNode})
	count := make(map[string]int, len(recs))
	for i := range recs {
		rec := &recs[i]
		count[rec.Victim]++
		wantSeq, ok := acked[rec.Victim]
		if !ok {
			return fmt.Errorf("unacknowledged record %q survived the crash", rec.Victim)
		}
		if rec.Seq != wantSeq {
			return fmt.Errorf("record %q recovered with seq %d, acked as %d", rec.Victim, rec.Seq, wantSeq)
		}
	}
	if len(count) != len(acked) {
		missing := make([]string, 0)
		for v := range acked {
			if count[v] == 0 {
				missing = append(missing, v)
			}
		}
		sort.Strings(missing)
		if len(missing) > 3 {
			missing = missing[:3]
		}
		return fmt.Errorf("lost %d acknowledged records (e.g. %q)", len(acked)-len(count), missing)
	}
	for v, n := range count {
		if n != 1 {
			return fmt.Errorf("record %q recovered %d times", v, n)
		}
	}
	return nil
}

// randomRecord builds a diagnosis record with a unique victim key (the
// exactly-once tracer) and seed-chosen clustering attributes, so trials
// exercise incident joins, growth and multi-incident recovery.
func randomRecord(rng *sim.Rand, idx int) fleetstore.Record {
	types := []diagnosis.AnomalyType{
		diagnosis.TypeNormalContention,
		diagnosis.TypePFCContention,
		diagnosis.TypePFCStorm,
	}
	rec := fleetstore.Record{
		Fabric: fmt.Sprintf("pod-%c", 'a'+rune(rng.Intn(3))),
		At:     sim.Time(idx+1) * 50 * sim.Microsecond,
		Victim: fmt.Sprintf("v%06d", idx),
		Type:   types[rng.Intn(len(types))],
		Node:   topo.NodeID(rng.Intn(6)),
		Port:   rng.Intn(8),
	}
	if rng.Intn(3) == 0 {
		rec.Culprits = []string{fmt.Sprintf("flow-%d", rng.Intn(16))}
	}
	return rec
}

// tearWALTail appends up to maxTear garbage bytes to the last WAL
// segment — the torn half-record an interrupted write leaves. Recovery
// must truncate it and keep everything acknowledged before it.
func tearWALTail(dir string, rng *sim.Rand, maxTear int) (int, error) {
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		return 0, err
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	n := 1 + rng.Intn(maxTear)
	garbage := make([]byte, n)
	for i := range garbage {
		garbage[i] = byte(rng.Uint64())
	}
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(garbage); err != nil {
		f.Close()
		return 0, err
	}
	return n, f.Close()
}

package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hawkeye/internal/sim"
)

// FlakyConfig shapes the transport faults a FlakyProxy injects between
// analyzd clients and the server.
type FlakyConfig struct {
	// ResetFirst aborts the first N accepted connections immediately
	// (connection reset at dial time).
	ResetFirst int
	// ResetEveryNth additionally aborts every Nth accepted connection
	// after the first N (0 disables). A value of 3 kills connections
	// 3, 6, 9, ... of the post-ResetFirst stream.
	ResetEveryNth int
	// ResetAfterBytes aborts a surviving connection once this many bytes
	// have been forwarded client-to-server (mid-session reset; 0 never).
	ResetAfterBytes int64
	// ReadDelay stalls each client-to-server read by this much
	// (slow-read fault; 0 disables).
	ReadDelay time.Duration
	// CorruptEveryNth flips one bit in every Nth client-to-server chunk
	// the proxy forwards (0 disables). The flipped byte/bit positions
	// come from Seed, so a corrupted run replays exactly. This is the
	// frame-corruption channel: with length-prefixed framing a single
	// bit flip lands in a length field, a type byte, or a payload, and
	// the server's admission path must absorb all three.
	CorruptEveryNth int
	// Seed drives the probabilistic decisions (bit positions for
	// CorruptEveryNth); resets above are deterministic counters so
	// retry tests are exact.
	Seed uint64
}

// FlakyProxy is a TCP proxy that forwards connections to a backend
// address while injecting transport faults per FlakyConfig: connection
// resets at accept, mid-session resets after a byte budget, and slow
// reads. It exists to exercise the analyzd client's retry/backoff path
// against a real server without patching either side.
type FlakyProxy struct {
	Cfg FlakyConfig

	lis     net.Listener
	backend string

	accepted  atomic.Int64
	resets    atomic.Int64
	chunks    atomic.Int64
	corrupted atomic.Int64

	rngMu sync.Mutex
	rng   *sim.Rand

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewFlakyProxy listens on addr (e.g. "127.0.0.1:0") and forwards
// surviving connections to backend.
func NewFlakyProxy(addr, backend string, cfg FlakyConfig) (*FlakyProxy, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: flaky proxy listen: %w", err)
	}
	p := &FlakyProxy{
		Cfg: cfg, lis: lis, backend: backend,
		conns: make(map[net.Conn]struct{}),
		rng:   sim.NewRand(cfg.Seed),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// backend).
func (p *FlakyProxy) Addr() string { return p.lis.Addr().String() }

// Resets returns how many connections the proxy has aborted so far.
func (p *FlakyProxy) Resets() int { return int(p.resets.Load()) }

// Accepted returns how many connections the proxy has accepted so far.
func (p *FlakyProxy) Accepted() int { return int(p.accepted.Load()) }

// Corruptions returns how many forwarded chunks have had a bit flipped.
func (p *FlakyProxy) Corruptions() int { return int(p.corrupted.Load()) }

// maybeCorrupt flips one seeded-random bit in buf when this chunk (a
// global 1-based count across all connections) is due per
// CorruptEveryNth.
func (p *FlakyProxy) maybeCorrupt(buf []byte) {
	if p.Cfg.CorruptEveryNth <= 0 || len(buf) == 0 {
		return
	}
	if p.chunks.Add(1)%int64(p.Cfg.CorruptEveryNth) != 0 {
		return
	}
	p.rngMu.Lock()
	i := p.rng.Intn(len(buf))
	bit := p.rng.Intn(8)
	p.rngMu.Unlock()
	buf[i] ^= 1 << bit
	p.corrupted.Add(1)
}

// Close stops the proxy and severs every live connection.
func (p *FlakyProxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

func (p *FlakyProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			return
		}
		n := p.accepted.Add(1)
		if p.shouldReset(n) {
			p.resets.Add(1)
			abortConn(conn)
			continue
		}
		p.wg.Add(1)
		go p.serve(conn)
	}
}

// shouldReset applies the deterministic reset pattern to the nth
// accepted connection (1-based).
func (p *FlakyProxy) shouldReset(n int64) bool {
	if n <= int64(p.Cfg.ResetFirst) {
		return true
	}
	if p.Cfg.ResetEveryNth > 0 {
		k := n - int64(p.Cfg.ResetFirst)
		return k%int64(p.Cfg.ResetEveryNth) == 0
	}
	return false
}

// abortConn closes with SO_LINGER=0 so the peer sees an RST rather than
// a graceful FIN — the "connection reset by peer" the retry path must
// survive.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

func (p *FlakyProxy) serve(client net.Conn) {
	defer p.wg.Done()
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		abortConn(client)
		return
	}
	p.track(client)
	p.track(server)
	defer p.untrack(client)
	defer p.untrack(server)

	done := make(chan struct{}, 2)
	// Client -> server carries the fault budget and the slow reads.
	go func() {
		defer func() { done <- struct{}{} }()
		var forwarded int64
		buf := make([]byte, 16*1024)
		for {
			if p.Cfg.ReadDelay > 0 {
				time.Sleep(p.Cfg.ReadDelay)
			}
			n, err := client.Read(buf)
			if n > 0 {
				forwarded += int64(n)
				p.maybeCorrupt(buf[:n])
				if _, werr := server.Write(buf[:n]); werr != nil {
					return
				}
				if p.Cfg.ResetAfterBytes > 0 && forwarded >= p.Cfg.ResetAfterBytes {
					p.resets.Add(1)
					abortConn(client)
					abortConn(server)
					return
				}
			}
			if err != nil {
				server.Close()
				return
			}
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		io.Copy(client, server)
		client.Close()
	}()
	<-done
	<-done
}

func (p *FlakyProxy) track(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return
	}
	p.conns[c] = struct{}{}
}

func (p *FlakyProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

// Jitter computes one capped-exponential-backoff delay with symmetric
// jitter: min(base<<attempt, max) scaled by 1 ± frac. It is exported so
// client retry logic and tests share the same arithmetic.
func Jitter(rng *sim.Rand, base, max time.Duration, attempt int, frac float64) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	if frac > 0 && rng != nil {
		scale := 1 + frac*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * scale)
	}
	return d
}

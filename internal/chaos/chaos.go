package chaos

import (
	"fmt"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Counters is the engine-wide fault accounting surface: every injection,
// across every channel, lands here.
type Counters struct {
	PollingDropped    uint64
	PollingDuplicated uint64
	EpochsDropped     uint64
	MetersCorrupted   uint64
	StatusCorrupted   uint64
	DeliveriesDropped uint64
	DeliveriesLagged  uint64
	LinkFlaps         uint64
	BWChanges         uint64

	HostReportsDropped   uint64
	HostReportsCorrupted uint64
}

func (c Counters) String() string {
	return fmt.Sprintf(
		"chaos: poll drop=%d dup=%d | tel epochs=%d meters=%d status=%d | collect drop=%d lag=%d | links flaps=%d bw=%d | host drop=%d corrupt=%d",
		c.PollingDropped, c.PollingDuplicated, c.EpochsDropped, c.MetersCorrupted,
		c.StatusCorrupted, c.DeliveriesDropped, c.DeliveriesLagged, c.LinkFlaps, c.BWChanges,
		c.HostReportsDropped, c.HostReportsCorrupted)
}

// Engine draws every fault decision from per-channel forked streams of
// one seed, so fault sequences on one channel are independent of how
// often the others fire — and the whole composition replays exactly.
//
// Engine implements polling.FaultInjector, telemetry.Faults,
// collect.Faults and core.HostFaults.
type Engine struct {
	Sched Schedule

	// Counters accumulates every injection decision that fired.
	Counters Counters

	rngPoll    *sim.Rand
	rngTel     *sim.Rand
	rngCollect *sim.Rand
	rngHost    *sim.Rand
}

// NewEngine builds an engine for the schedule. The seed fully
// determines every probabilistic decision; a zero seed is valid (it maps
// to the generator's fixed default).
func NewEngine(sched Schedule, seed uint64) *Engine {
	root := sim.NewRand(seed ^ 0xC8A0C8A0C8A0C8A0)
	return &Engine{
		Sched:      sched,
		rngPoll:    root.Fork(),
		rngTel:     root.Fork(),
		rngCollect: root.Fork(),
		rngHost:    root.Fork(),
	}
}

// DropPolling implements polling.FaultInjector.
func (e *Engine) DropPolling(topo.NodeID, packet.PollingHeader) bool {
	if e.Sched.PollLoss > 0 && e.rngPoll.Float64() < e.Sched.PollLoss {
		e.Counters.PollingDropped++
		return true
	}
	return false
}

// DuplicatePolling implements polling.FaultInjector.
func (e *Engine) DuplicatePolling(topo.NodeID, packet.PollingHeader) bool {
	if e.Sched.PollDup > 0 && e.rngPoll.Float64() < e.Sched.PollDup {
		e.Counters.PollingDuplicated++
		return true
	}
	return false
}

// DropEpoch implements telemetry.Faults.
func (e *Engine) DropEpoch(topo.NodeID, int) bool {
	if e.Sched.TelemetryEpochLoss > 0 && e.rngTel.Float64() < e.Sched.TelemetryEpochLoss {
		e.Counters.EpochsDropped++
		return true
	}
	return false
}

// CorruptMeter implements telemetry.Faults: half the corruptions zero
// the register (the causality evidence is erased and the record is
// zero-filtered out of the report), half replace the byte count with
// bounded garbage.
func (e *Engine) CorruptMeter(_ topo.NodeID, rec *telemetry.MeterRecord) bool {
	if e.Sched.MeterCorrupt <= 0 || e.rngTel.Float64() >= e.Sched.MeterCorrupt {
		return false
	}
	e.Counters.MetersCorrupted++
	if e.rngTel.Float64() < 0.5 || rec.Bytes == 0 {
		rec.Bytes = 0
	} else {
		rec.Bytes = 1 + e.rngTel.Uint64()%(2*rec.Bytes)
	}
	return true
}

// CorruptStatus implements telemetry.Faults: half the corruptions wipe
// the register block (lost pause evidence), half fabricate a backlog
// (false congestion evidence).
func (e *Engine) CorruptStatus(_ topo.NodeID, st *telemetry.PortStatus) bool {
	if e.Sched.StatusCorrupt <= 0 || e.rngTel.Float64() >= e.Sched.StatusCorrupt {
		return false
	}
	e.Counters.StatusCorrupted++
	if e.rngTel.Float64() < 0.5 {
		st.PausedUntil = 0
		st.QdepthBytes = 0
	} else {
		st.QdepthBytes = int(e.rngTel.Uint64() % (1 << 17))
	}
	return true
}

// DropDelivery implements collect.Faults.
func (e *Engine) DropDelivery(topo.NodeID) bool {
	if e.Sched.CollectDrop > 0 && e.rngCollect.Float64() < e.Sched.CollectDrop {
		e.Counters.DeliveriesDropped++
		return true
	}
	return false
}

// CollectLatency implements collect.Faults: uniform lag in [0, max].
func (e *Engine) CollectLatency(topo.NodeID) sim.Time {
	if e.Sched.CollectLagMax <= 0 {
		return 0
	}
	lag := sim.Time(e.rngCollect.Float64() * float64(e.Sched.CollectLagMax))
	if lag > 0 {
		e.Counters.DeliveriesLagged++
	}
	return lag
}

// DropHostReport implements core.HostFaults: the host agent's counter
// snapshot never reaches the analyzer (agent crash, mgmt-net loss).
func (e *Engine) DropHostReport(topo.NodeID) bool {
	if e.Sched.HostReportLoss > 0 && e.rngHost.Float64() < e.Sched.HostReportLoss {
		e.Counters.HostReportsDropped++
		return true
	}
	return false
}

// CorruptHostReport implements core.HostFaults. Both corruption modes
// are detectable at admission — by design, so every fired corruption
// lands in the coverage accounting rather than silently steering the
// verdict: half fabricate an occupancy above capacity (strict decode
// rejects the report), half inflate the rate fields past physical
// plausibility (admission clamps them and counts the clamp).
func (e *Engine) CorruptHostReport(_ topo.NodeID, r *telemetry.HostReport) {
	if e.Sched.HostReportCorrupt <= 0 || e.rngHost.Float64() >= e.Sched.HostReportCorrupt {
		return
	}
	e.Counters.HostReportsCorrupted++
	if e.rngHost.Float64() < 0.5 {
		r.RxBufferBytes = r.RxBufferCap + 1 + e.rngHost.Uint64()%(1<<20)
	} else {
		r.DrainBps = 1 << 62
		r.ProcLatencyNS = 1 << 62
	}
}

// Install wires the engine into an installed Hawkeye system: every
// polling handler, every telemetry state, the collector, and the fabric
// (scheduled link flaps and bandwidth degradations, applied to both
// directions of each named link). It returns the engine for counter
// inspection after the run.
func Install(cl *cluster.Cluster, sys *core.System, sched Schedule, seed uint64) (*Engine, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	e := NewEngine(sched, seed)
	for _, h := range sys.Handlers {
		h.Cfg.Faults = e
	}
	for _, tel := range sys.Tels {
		tel.SetFaults(e)
	}
	sys.Collector.Faults = e
	sys.HostFaults = e
	e.scheduleFabricFaults(cl)
	return e, nil
}

// scheduleFabricFaults arms the explicitly timed link faults on the
// cluster's event engine.
func (e *Engine) scheduleFabricFaults(cl *cluster.Cluster) {
	net := cl.Net
	for _, f := range e.Sched.LinkFlaps {
		f := f
		peer, peerPort := net.Topo.PeerOf(f.Node, f.Port)
		cl.Eng.At(f.At, func() {
			until := f.At + f.Duration
			net.SetLinkDown(f.Node, f.Port, until)
			net.SetLinkDown(peer, peerPort, until)
			e.Counters.LinkFlaps++
		})
	}
	for _, d := range e.Sched.BWDegrades {
		d := d
		peer, peerPort := net.Topo.PeerOf(d.Node, d.Port)
		cl.Eng.At(d.At, func() {
			net.SetLinkBandwidthFactor(d.Node, d.Port, d.Factor)
			net.SetLinkBandwidthFactor(peer, peerPort, d.Factor)
			e.Counters.BWChanges++
		})
		cl.Eng.At(d.At+d.Duration, func() {
			net.SetLinkBandwidthFactor(d.Node, d.Port, 1)
			net.SetLinkBandwidthFactor(peer, peerPort, 1)
			e.Counters.BWChanges++
		})
	}
}

package packet

import "testing"

// FiveTuple.Hash runs once per packet per switch hop (ECMP + telemetry
// slot indexing) — the single hottest function in the simulator.
func BenchmarkFiveTupleHash(b *testing.B) {
	ft := FiveTuple{SrcIP: 0x0A000001, DstIP: 0x0A000010, SrcPort: 1027, DstPort: 4791, Proto: 17}
	b.ReportAllocs()
	var sink uint32
	for i := 0; i < b.N; i++ {
		ft.SrcPort = uint16(i)
		sink += ft.Hash()
	}
	_ = sink
}

func BenchmarkPollingHeaderRoundTrip(b *testing.B) {
	h := PollingHeader{Flag: FlagBoth, Victim: FiveTuple{SrcIP: 1, DstIP: 2}, DiagID: 7, HopsLow: 12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := h.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var out PollingHeader
		if err := out.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

package packet

import (
	"errors"
	"fmt"

	"hawkeye/internal/sim"
)

// PFC quanta semantics (IEEE 802.1Qbb): one pause quantum is the time to
// transmit 512 bits at the port's speed. A PAUSE frame carries a per-class
// 16-bit quanta count; 0 quanta means resume.
const (
	// PauseQuantumBits is the number of bit-times per pause quantum.
	PauseQuantumBits = 512
	// MaxPauseQuanta is the largest pause duration expressible in a frame.
	MaxPauseQuanta = 0xFFFF
)

// QuantumDuration returns the wall duration of a single pause quantum on
// a link of the given bandwidth (bits per second).
func QuantumDuration(linkBps float64) sim.Time {
	return sim.Time(float64(PauseQuantumBits) / linkBps * 1e9)
}

// PauseDuration converts a quanta count to virtual time on a link.
func PauseDuration(quanta uint16, linkBps float64) sim.Time {
	return sim.Time(float64(quanta) * float64(PauseQuantumBits) / linkBps * 1e9)
}

// PFCFrame is an 802.1Qbb priority-based flow control frame. The class
// enable vector selects which priorities the quanta apply to.
type PFCFrame struct {
	ClassEnable uint8 // bit i set => Quanta[i] is meaningful
	Quanta      [NumClasses]uint16
}

// Paused reports whether the frame pauses the given class (enabled with a
// non-zero quanta count).
func (f *PFCFrame) Paused(class uint8) bool {
	return f.ClassEnable&(1<<class) != 0 && f.Quanta[class] > 0
}

// Resumes reports whether the frame explicitly resumes the given class
// (enabled with zero quanta).
func (f *PFCFrame) Resumes(class uint8) bool {
	return f.ClassEnable&(1<<class) != 0 && f.Quanta[class] == 0
}

func (f *PFCFrame) String() string {
	s := fmt.Sprintf("enable=%08b", f.ClassEnable)
	for c := 0; c < NumClasses; c++ {
		if f.ClassEnable&(1<<c) != 0 {
			s += fmt.Sprintf(" c%d=%d", c, f.Quanta[c])
		}
	}
	return s
}

// pfcWireLen is opcode(2) + class-enable vector(2) + 8 quanta fields(16).
const pfcWireLen = 20

// pfcOpcode is the 802.3x MAC control opcode for priority-based flow
// control.
const pfcOpcode = 0x0101

// MarshalBinary encodes the frame in 802.1Qbb wire format.
func (f *PFCFrame) MarshalBinary() ([]byte, error) {
	b := make([]byte, pfcWireLen)
	putU16(b[0:], pfcOpcode)
	// The standard carries the enable vector in the low byte of the
	// 16-bit priority-enable field.
	putU16(b[2:], uint16(f.ClassEnable))
	for c := 0; c < NumClasses; c++ {
		putU16(b[4+2*c:], f.Quanta[c])
	}
	return b, nil
}

// ErrBadFrame reports a malformed control frame.
var ErrBadFrame = errors.New("packet: malformed frame")

// UnmarshalBinary decodes an 802.1Qbb frame.
func (f *PFCFrame) UnmarshalBinary(b []byte) error {
	if len(b) < pfcWireLen {
		return fmt.Errorf("%w: PFC frame %d bytes, need %d", ErrBadFrame, len(b), pfcWireLen)
	}
	if getU16(b) != pfcOpcode {
		return fmt.Errorf("%w: PFC opcode %#04x", ErrBadFrame, getU16(b))
	}
	f.ClassEnable = byte(getU16(b[2:]))
	for c := 0; c < NumClasses; c++ {
		f.Quanta[c] = getU16(b[4+2*c:])
	}
	return nil
}

// NewPause builds a PAUSE frame for a single class.
func NewPause(class uint8, quanta uint16) *PFCFrame {
	f := &PFCFrame{ClassEnable: 1 << class}
	f.Quanta[class] = quanta
	return f
}

// NewResume builds a RESUME (zero-quanta) frame for a single class.
func NewResume(class uint8) *PFCFrame {
	return &PFCFrame{ClassEnable: 1 << class}
}

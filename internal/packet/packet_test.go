package packet

import (
	"testing"
	"testing/quick"

	"hawkeye/internal/sim"
)

func tupleA() FiveTuple {
	return FiveTuple{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 4791, DstPort: 4791, Proto: ProtoUDP}
}

func TestFiveTupleHashStable(t *testing.T) {
	a := tupleA()
	if a.Hash() != a.Hash() {
		t.Fatal("hash not stable")
	}
	b := a
	b.SrcPort++
	if a.Hash() == b.Hash() {
		t.Fatal("trivially different tuples collided (suspicious hash)")
	}
}

func TestFiveTupleXOREquals(t *testing.T) {
	a := tupleA()
	if !a.XOREquals(a) {
		t.Fatal("tuple does not XOR-equal itself")
	}
	b := a
	b.DstIP ^= 1
	if a.XOREquals(b) {
		t.Fatal("different tuples XOR-equal")
	}
}

func TestFiveTupleXOREqualsMatchesEquality(t *testing.T) {
	f := func(a, b FiveTuple) bool {
		return a.XOREquals(b) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFiveTupleReverse(t *testing.T) {
	a := tupleA()
	r := a.Reverse()
	if r.SrcIP != a.DstIP || r.DstIP != a.SrcIP || r.SrcPort != a.DstPort || r.DstPort != a.SrcPort {
		t.Fatalf("Reverse mangled tuple: %v -> %v", a, r)
	}
	if rr := r.Reverse(); rr != a {
		t.Fatalf("double Reverse != identity: %v", rr)
	}
}

func TestFiveTupleIsZero(t *testing.T) {
	var z FiveTuple
	if !z.IsZero() {
		t.Fatal("zero tuple not IsZero")
	}
	if tupleA().IsZero() {
		t.Fatal("non-zero tuple IsZero")
	}
}

func TestPFCFrameRoundTrip(t *testing.T) {
	f := func(enable uint8, q0, q3, q7 uint16) bool {
		in := &PFCFrame{ClassEnable: enable}
		in.Quanta[0], in.Quanta[3], in.Quanta[7] = q0, q3, q7
		b, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out PFCFrame
		if err := out.UnmarshalBinary(b); err != nil {
			return false
		}
		return out == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPFCFrameRejectsBadInput(t *testing.T) {
	var f PFCFrame
	if err := f.UnmarshalBinary(make([]byte, 5)); err == nil {
		t.Fatal("short frame accepted")
	}
	b := make([]byte, pfcWireLen)
	if err := f.UnmarshalBinary(b); err == nil {
		t.Fatal("wrong opcode accepted")
	}
}

func TestPauseResumeSemantics(t *testing.T) {
	p := NewPause(ClassLossless, 100)
	if !p.Paused(ClassLossless) {
		t.Fatal("pause frame not Paused for its class")
	}
	if p.Paused(ClassControl) {
		t.Fatal("pause frame Paused for unrelated class")
	}
	if p.Resumes(ClassLossless) {
		t.Fatal("pause frame Resumes")
	}
	r := NewResume(ClassLossless)
	if !r.Resumes(ClassLossless) {
		t.Fatal("resume frame not Resumes")
	}
	if r.Paused(ClassLossless) {
		t.Fatal("resume frame Paused")
	}
}

func TestPauseDuration(t *testing.T) {
	// At 100 Gbps one quantum is 512/100e9 s = 5.12 ns.
	d := PauseDuration(1000, 100e9)
	if d != sim.Time(5120) {
		t.Fatalf("PauseDuration(1000, 100G) = %v, want 5120ns", d)
	}
	if q := QuantumDuration(100e9); q != 5 { // truncated to ns
		t.Fatalf("QuantumDuration = %v, want 5ns", q)
	}
}

func TestPollingHeaderRoundTrip(t *testing.T) {
	f := func(flag uint8, victim FiveTuple, id uint32, ttl uint8) bool {
		in := &PollingHeader{Flag: PollingFlag(flag % 4), Victim: victim, DiagID: id, HopsLow: ttl}
		b, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		if len(b) != PollingHeaderLen {
			return false
		}
		var out PollingHeader
		if err := out.UnmarshalBinary(b); err != nil {
			return false
		}
		return out == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPollingHeaderRejectsBadFlag(t *testing.T) {
	h := &PollingHeader{Flag: 7}
	if _, err := h.MarshalBinary(); err == nil {
		t.Fatal("bad flag marshalled")
	}
	b := make([]byte, PollingHeaderLen)
	b[0] = 9
	var out PollingHeader
	if err := out.UnmarshalBinary(b); err == nil {
		t.Fatal("bad flag unmarshalled")
	}
	if err := out.UnmarshalBinary(b[:3]); err == nil {
		t.Fatal("short header unmarshalled")
	}
}

func TestPollingFlagBits(t *testing.T) {
	cases := []struct {
		flag          PollingFlag
		victim, trace bool
	}{
		{FlagUseless, false, false},
		{FlagVictimPath, true, false},
		{FlagPFCOnly, false, true},
		{FlagBoth, true, true},
	}
	for _, c := range cases {
		if c.flag.TraceVictim() != c.victim || c.flag.TracePFC() != c.trace {
			t.Errorf("flag %v: TraceVictim=%v TracePFC=%v, want %v/%v",
				c.flag, c.flag.TraceVictim(), c.flag.TracePFC(), c.victim, c.trace)
		}
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{
		Type: TypePolling,
		Poll: &PollingHeader{Flag: FlagVictimPath, Victim: tupleA(), DiagID: 7},
		PFC:  NewPause(3, 10),
	}
	q := p.Clone()
	q.Poll.Flag = FlagBoth
	q.PFC.Quanta[3] = 99
	if p.Poll.Flag != FlagVictimPath || p.PFC.Quanta[3] != 10 {
		t.Fatal("Clone shares kind-specific payloads")
	}
}

func TestTypeIsControl(t *testing.T) {
	if TypeData.IsControl() || TypePFC.IsControl() {
		t.Fatal("data/PFC misclassified as control")
	}
	for _, ty := range []Type{TypeACK, TypeCNP, TypeNACK, TypePolling, TypeReport} {
		if !ty.IsControl() {
			t.Fatalf("%v not classified as control", ty)
		}
	}
}

func TestStringsDoNotPanic(t *testing.T) {
	_ = tupleA().String()
	_ = NewPause(3, 5).String()
	_ = (&PollingHeader{Flag: FlagBoth, Victim: tupleA()}).String()
	_ = (&Packet{Type: TypeData, Flow: tupleA()}).String()
	_ = (&Packet{Type: TypePFC, PFC: NewPause(1, 2)}).String()
	_ = (&Packet{Type: TypePolling, Poll: &PollingHeader{}}).String()
	_ = Type(99).String()
	_ = PollingFlag(9).String()
}

// Package packet defines the wire-level vocabulary of the simulated RDMA
// network: flow 5-tuples, RoCEv2-style data/ACK/CNP packets, IEEE 802.1Qbb
// PFC PAUSE frames, and the Hawkeye polling packet (paper Fig. 5).
//
// Inside the simulator packets travel as Go structs for speed; the binary
// codecs in this package are used wherever bytes actually matter — polling
// packet parsing on switches, PFC frame quanta, and telemetry reports — and
// follow the prepend/append layering style of gopacket serialization.
package packet

import (
	"fmt"

	"hawkeye/internal/sim"
)

// Proto numbers used by the model (a tiny subset of IANA).
const (
	ProtoUDP uint8 = 17 // RoCEv2 runs over UDP
)

// FiveTuple identifies a flow. IPv4 addresses are stored as uint32 in
// host order; this matches how a P4 pipeline would treat them as bit
// vectors for hashing and XOR comparison.
type FiveTuple struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Size of an encoded FiveTuple in bytes.
const FiveTupleLen = 13

// IsZero reports whether the tuple is the zero value (an empty telemetry
// slot).
func (ft FiveTuple) IsZero() bool { return ft == FiveTuple{} }

// Hash returns a 32-bit hash of the tuple (FNV-1a over the 13 encoded
// bytes). Switch telemetry tables index slots with Hash % tableSize,
// mirroring the CRC-based hash units in a Tofino pipeline.
func (ft FiveTuple) Hash() uint32 {
	var b [FiveTupleLen]byte
	ft.encode(b[:])
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// XOREquals reports whether two tuples are bitwise identical, expressed
// the way the paper's data plane does it: XOR of the stored and incoming
// tuples equal to zero.
func (ft FiveTuple) XOREquals(other FiveTuple) bool {
	return ft.SrcIP^other.SrcIP == 0 &&
		ft.DstIP^other.DstIP == 0 &&
		ft.SrcPort^other.SrcPort == 0 &&
		ft.DstPort^other.DstPort == 0 &&
		ft.Proto^other.Proto == 0
}

// Reverse returns the tuple with source and destination swapped, used for
// ACK/CNP return traffic.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: ft.DstIP, DstIP: ft.SrcIP,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
		Proto: ft.Proto,
	}
}

func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%d",
		ipString(ft.SrcIP), ft.SrcPort, ipString(ft.DstIP), ft.DstPort, ft.Proto)
}

func ipString(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

func (ft FiveTuple) encode(b []byte) {
	putU32(b[0:], ft.SrcIP)
	putU32(b[4:], ft.DstIP)
	putU16(b[8:], ft.SrcPort)
	putU16(b[10:], ft.DstPort)
	b[12] = ft.Proto
}

// MarshalBinary encodes the tuple in its 13-byte wire layout.
func (ft FiveTuple) MarshalBinary() ([]byte, error) {
	b := make([]byte, FiveTupleLen)
	ft.encode(b)
	return b, nil
}

// UnmarshalBinary decodes the 13-byte wire layout.
func (ft *FiveTuple) UnmarshalBinary(b []byte) error {
	if len(b) < FiveTupleLen {
		return fmt.Errorf("%w: 5-tuple %d bytes, need %d", ErrBadFrame, len(b), FiveTupleLen)
	}
	*ft = decodeFiveTuple(b)
	return nil
}

func decodeFiveTuple(b []byte) FiveTuple {
	return FiveTuple{
		SrcIP:   getU32(b[0:]),
		DstIP:   getU32(b[4:]),
		SrcPort: getU16(b[8:]),
		DstPort: getU16(b[10:]),
		Proto:   b[12],
	}
}

// Type enumerates the packet kinds the simulator forwards.
type Type uint8

const (
	// TypeData is a RoCEv2 data segment.
	TypeData Type = iota
	// TypeACK acknowledges received data (per-packet, coalesced by hosts).
	TypeACK
	// TypeCNP is a DCQCN congestion notification packet.
	TypeCNP
	// TypeNACK signals an out-of-order arrival (go-back-N).
	TypeNACK
	// TypePFC is an 802.1Qbb priority flow-control frame. PFC frames are
	// link-local: they never cross a switch.
	TypePFC
	// TypePolling is a Hawkeye diagnosis polling packet (paper Fig. 5).
	TypePolling
	// TypeReport carries telemetry from a switch CPU to the analyzer.
	TypeReport
)

func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeACK:
		return "ACK"
	case TypeCNP:
		return "CNP"
	case TypeNACK:
		return "NACK"
	case TypePFC:
		return "PFC"
	case TypePolling:
		return "POLL"
	case TypeReport:
		return "REPORT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsControl reports whether the packet type travels in the unpausable
// control queue (same priority as CNP, per §3.4).
func (t Type) IsControl() bool {
	switch t {
	case TypeCNP, TypeACK, TypeNACK, TypePolling, TypeReport:
		return true
	}
	return false
}

// Priority classes. The model uses a small number of 802.1p classes:
// lossless RDMA traffic rides ClassLossless (PFC-enabled), control
// packets ride ClassControl (never paused).
const (
	ClassLossless uint8 = 3
	ClassControl  uint8 = 6
	NumClasses          = 8
)

// Packet is the unit the simulator forwards. A single struct covers all
// packet kinds; kind-specific payloads live in the optional pointers so
// the common case (data) stays small.
type Packet struct {
	ID       uint64
	Type     Type
	Flow     FiveTuple
	Class    uint8 // 802.1p priority class
	Size     int   // bytes on the wire, headers included
	Seq      uint32
	FlowID   uint64 // dense simulator-side flow identifier
	Last     bool   // final segment of its flow (ACK-flush marker)
	ECN      bool   // CE mark set by congested egress queues
	SentAt   sim.Time
	AckedSeq uint32 // for ACK/NACK: cumulative sequence being acknowledged

	// CumDelayNS is SpiderMon's in-band 16-bit cumulative queuing delay
	// counter (in units of 64ns to fit 16 bits, as the baseline describes);
	// unused by Hawkeye.
	CumDelay uint16

	PFC  *PFCFrame
	Poll *PollingHeader
}

// Header sizes used for accounting, matching RoCEv2 framing:
// Ethernet(14)+FCS(4)+preamble/IPG(20 effective) + IPv4(20) + UDP(8) + BTH(12).
const (
	EthOverhead    = 38 // preamble + eth header + FCS + min IPG
	IPUDPBTHHeader = 40
	// DataHeaderLen is the total per-packet overhead for a data segment.
	DataHeaderLen = EthOverhead + IPUDPBTHHeader
	// DefaultMTU is the largest data payload per segment.
	DefaultMTU = 1000
	// ControlPacketSize approximates ACK/CNP/NACK wire size.
	ControlPacketSize = 84
	// PFCFrameSize is the wire size of an 802.1Qbb pause frame.
	PFCFrameSize = 64
	// PollingPacketSize is the wire size of a Hawkeye polling packet.
	PollingPacketSize = EthOverhead + IPUDPBTHHeader + PollingHeaderLen
)

// Clone returns a deep copy of the packet (kind-specific payloads
// included). Multicast replication of polling packets uses this.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.PFC != nil {
		f := *p.PFC
		q.PFC = &f
	}
	if p.Poll != nil {
		h := *p.Poll
		q.Poll = &h
	}
	return &q
}

func (p *Packet) String() string {
	switch p.Type {
	case TypePFC:
		return fmt.Sprintf("PFC{%v}", p.PFC)
	case TypePolling:
		return fmt.Sprintf("POLL{%v}", p.Poll)
	default:
		return fmt.Sprintf("%s{%v seq=%d size=%d}", p.Type, p.Flow, p.Seq, p.Size)
	}
}

// binary helpers (big-endian, network order)

func putU16(b []byte, v uint16) { b[0] = byte(v >> 8); b[1] = byte(v) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v>>32))
	putU32(b[4:], uint32(v))
}
func getU16(b []byte) uint16 { return uint16(b[0])<<8 | uint16(b[1]) }
func getU32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func getU64(b []byte) uint64 { return uint64(getU32(b))<<32 | uint64(getU32(b[4:])) }

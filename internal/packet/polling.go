package packet

import "fmt"

// PollingFlag is the 2-bit tracing directive in a Hawkeye polling packet
// (paper Table 1).
type PollingFlag uint8

const (
	// FlagUseless marks a polling packet that should be dropped.
	FlagUseless PollingFlag = 0b00
	// FlagVictimPath (default) traces along the victim flow path only.
	FlagVictimPath PollingFlag = 0b01
	// FlagPFCOnly traces along PFC causality only.
	FlagPFCOnly PollingFlag = 0b10
	// FlagBoth traces along both the victim path and PFC causality.
	FlagBoth PollingFlag = 0b11
)

// TracePFC reports whether the high bit is set (flag 1*): the receiving
// switch must analyze its PFC causality.
func (f PollingFlag) TracePFC() bool { return f&0b10 != 0 }

// TraceVictim reports whether the low bit is set: the packet follows the
// victim flow path.
func (f PollingFlag) TraceVictim() bool { return f&0b01 != 0 }

func (f PollingFlag) String() string {
	switch f {
	case FlagUseless:
		return "useless"
	case FlagVictimPath:
		return "victim-path"
	case FlagPFCOnly:
		return "pfc-only"
	case FlagBoth:
		return "victim+pfc"
	default:
		return fmt.Sprintf("PollingFlag(%02b)", uint8(f))
	}
}

// PollingHeader is the Hawkeye polling packet payload (paper Fig. 5): the
// tracing flag, the victim flow's 5-tuple, and a diagnosis identifier that
// lets the analyzer correlate telemetry reports triggered by one event.
type PollingHeader struct {
	Flag    PollingFlag
	Victim  FiveTuple
	DiagID  uint32
	HopsLow uint8 // TTL-style bound on PFC-trace depth (safety net)
}

// PollingHeaderLen is the encoded size: flag(1) + tuple(13) + id(4) + ttl(1).
const PollingHeaderLen = 1 + FiveTupleLen + 4 + 1

// DefaultPollTTL bounds how many PFC-causality hops a polling packet may
// traverse. PFC spreading paths in practice are far shorter; the bound only
// guards against pathological meter state.
const DefaultPollTTL = 32

// MarshalBinary encodes the polling header.
func (h *PollingHeader) MarshalBinary() ([]byte, error) {
	if h.Flag > FlagBoth {
		return nil, fmt.Errorf("%w: polling flag %d", ErrBadFrame, h.Flag)
	}
	b := make([]byte, PollingHeaderLen)
	b[0] = uint8(h.Flag)
	h.Victim.encode(b[1:])
	putU32(b[1+FiveTupleLen:], h.DiagID)
	b[PollingHeaderLen-1] = h.HopsLow
	return b, nil
}

// UnmarshalBinary decodes the polling header.
func (h *PollingHeader) UnmarshalBinary(b []byte) error {
	if len(b) < PollingHeaderLen {
		return fmt.Errorf("%w: polling header %d bytes, need %d", ErrBadFrame, len(b), PollingHeaderLen)
	}
	if b[0] > uint8(FlagBoth) {
		return fmt.Errorf("%w: polling flag %#02x", ErrBadFrame, b[0])
	}
	h.Flag = PollingFlag(b[0])
	h.Victim = decodeFiveTuple(b[1:])
	h.DiagID = getU32(b[1+FiveTupleLen:])
	h.HopsLow = b[PollingHeaderLen-1]
	return nil
}

func (h *PollingHeader) String() string {
	return fmt.Sprintf("flag=%v victim=%v diag=%d ttl=%d", h.Flag, h.Victim, h.DiagID, h.HopsLow)
}

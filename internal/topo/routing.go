package topo

import (
	"fmt"
	"sort"
)

// Routing holds, for every node, the ECMP next-hop port set toward every
// destination host. It is computed once per topology (BFS per destination)
// and then optionally perturbed with static overrides to model the routing
// misconfigurations that create cyclic buffer dependencies (§2.1).
type Routing struct {
	topo *Topology
	// next[node][dstHost] = sorted egress port candidates on shortest paths.
	next map[NodeID]map[NodeID][]int
	// overrides[node][dstHost] = forced egress ports (misconfiguration).
	overrides map[NodeID]map[NodeID][]int
}

// ComputeRouting builds shortest-path ECMP tables for all destinations.
func ComputeRouting(t *Topology) *Routing {
	r := &Routing{
		topo:      t,
		next:      make(map[NodeID]map[NodeID][]int, len(t.Nodes)),
		overrides: make(map[NodeID]map[NodeID][]int),
	}
	for _, n := range t.Nodes {
		r.next[n.ID] = make(map[NodeID][]int, len(t.hosts))
	}
	for _, dst := range t.hosts {
		r.computeFor(dst)
	}
	return r
}

// computeFor runs a reverse BFS from dst and records, at each node, every
// port whose peer is one hop closer to dst.
func (r *Routing) computeFor(dst NodeID) {
	t := r.topo
	const unreached = -1
	dist := make([]int, len(t.Nodes))
	for i := range dist {
		dist[i] = unreached
	}
	dist[dst] = 0
	queue := []NodeID{dst}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range t.Nodes[cur].Ports {
			if dist[p.Peer] == unreached {
				dist[p.Peer] = dist[cur] + 1
				queue = append(queue, p.Peer)
			}
		}
	}
	for _, n := range t.Nodes {
		if n.ID == dst || dist[n.ID] == unreached {
			continue
		}
		var ports []int
		for pi, p := range n.Ports {
			if d := dist[p.Peer]; d != unreached && d == dist[n.ID]-1 {
				ports = append(ports, pi)
			}
		}
		sort.Ints(ports)
		r.next[n.ID][dst] = ports
	}
}

// NextHops returns the candidate egress ports at node toward dstHost,
// honouring overrides. An empty result means dst is unreachable.
func (r *Routing) NextHops(node, dstHost NodeID) []int {
	if o, ok := r.overrides[node][dstHost]; ok {
		return o
	}
	return r.next[node][dstHost]
}

// SelectPort picks one next hop using an ECMP hash value. Hosts always
// use their single port.
func (r *Routing) SelectPort(node, dstHost NodeID, ecmpHash uint32) (int, bool) {
	hops := r.NextHops(node, dstHost)
	if len(hops) == 0 {
		return 0, false
	}
	return hops[int(ecmpHash)%len(hops)], true
}

// Override forces the next-hop port set at node toward dstHost. Used to
// inject routing misconfigurations (link-failure reroutes, loops) that
// produce cyclic buffer dependencies.
func (r *Routing) Override(node, dstHost NodeID, ports []int) {
	m, ok := r.overrides[node]
	if !ok {
		m = make(map[NodeID][]int)
		r.overrides[node] = m
	}
	cp := append([]int(nil), ports...)
	sort.Ints(cp)
	m[dstHost] = cp
}

// ClearOverrides removes all misconfigurations.
func (r *Routing) ClearOverrides() {
	r.overrides = make(map[NodeID]map[NodeID][]int)
}

// Path returns the node sequence a packet with the given ECMP hash takes
// from srcHost to dstHost, or an error if routing loops or dead-ends.
// The returned path includes both endpoints.
func (r *Routing) Path(srcHost, dstHost NodeID, ecmpHash uint32) ([]NodeID, error) {
	if srcHost == dstHost {
		return []NodeID{srcHost}, nil
	}
	path := []NodeID{srcHost}
	cur := srcHost
	for steps := 0; steps < 4*len(r.topo.Nodes); steps++ {
		port, ok := r.SelectPort(cur, dstHost, ecmpHash)
		if !ok {
			return nil, fmt.Errorf("topo: no route from %s toward %s at %s",
				r.topo.Nodes[srcHost].Name, r.topo.Nodes[dstHost].Name, r.topo.Nodes[cur].Name)
		}
		nxt, _ := r.topo.PeerOf(cur, port)
		path = append(path, nxt)
		if nxt == dstHost {
			return path, nil
		}
		cur = nxt
	}
	return nil, fmt.Errorf("topo: routing loop from %s to %s",
		r.topo.Nodes[srcHost].Name, r.topo.Nodes[dstHost].Name)
}

// PortPath returns the sequence of (node, egress port) hops for the same
// walk as Path, excluding the destination. This is the victim flow path
// at port granularity, the unit Hawkeye polling traverses.
func (r *Routing) PortPath(srcHost, dstHost NodeID, ecmpHash uint32) ([]PortRef, error) {
	if srcHost == dstHost {
		return nil, nil
	}
	var refs []PortRef
	cur := srcHost
	for steps := 0; steps < 4*len(r.topo.Nodes); steps++ {
		port, ok := r.SelectPort(cur, dstHost, ecmpHash)
		if !ok {
			return nil, fmt.Errorf("topo: no route at %s", r.topo.Nodes[cur].Name)
		}
		refs = append(refs, PortRef{Node: cur, Port: port})
		nxt, _ := r.topo.PeerOf(cur, port)
		if nxt == dstHost {
			return refs, nil
		}
		cur = nxt
	}
	return nil, fmt.Errorf("topo: routing loop from %s to %s",
		r.topo.Nodes[srcHost].Name, r.topo.Nodes[dstHost].Name)
}

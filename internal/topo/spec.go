package topo

import (
	"encoding/json"
	"fmt"

	"hawkeye/internal/sim"
)

// NodeSpec is one node in a serialized topology.
type NodeSpec struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "host" or "switch"
}

// LinkSpec pins one bidirectional link, including the port index on each
// side — ports are identity in this system (routing tables, telemetry
// registers and provenance all name them), so the wire format preserves
// them exactly.
type LinkSpec struct {
	A     int `json:"a"`
	APort int `json:"aPort"`
	B     int `json:"b"`
	BPort int `json:"bPort"`
}

// Spec is the serializable form of a Topology: JSON for config files and
// the analyzer handshake.
type Spec struct {
	BandwidthBps float64    `json:"bandwidthBps"`
	DelayNS      int64      `json:"delayNs"`
	Nodes        []NodeSpec `json:"nodes"`
	Links        []LinkSpec `json:"links"`
}

// ToSpec captures the topology. Nodes appear in ID order; every link
// appears once, anchored at its lower (node, port) end.
func (t *Topology) ToSpec() Spec {
	s := Spec{
		BandwidthBps: t.LinkBandwidth,
		DelayNS:      int64(t.LinkDelay),
	}
	for _, n := range t.Nodes {
		kind := "switch"
		if n.Kind == KindHost {
			kind = "host"
		}
		s.Nodes = append(s.Nodes, NodeSpec{Name: n.Name, Kind: kind})
	}
	for _, n := range t.Nodes {
		for pi, p := range n.Ports {
			if p.Peer < n.ID || (p.Peer == n.ID && p.PeerPort < pi) {
				continue // emitted from the other side
			}
			s.Links = append(s.Links, LinkSpec{
				A: int(n.ID), APort: pi, B: int(p.Peer), BPort: p.PeerPort,
			})
		}
	}
	return s
}

// FromSpec reconstructs a topology. Node IDs, host IPs and port indices
// all match the original exactly.
func FromSpec(s Spec) (*Topology, error) {
	if s.BandwidthBps <= 0 {
		return nil, fmt.Errorf("topo: spec bandwidth %v", s.BandwidthBps)
	}
	if s.DelayNS < 0 {
		return nil, fmt.Errorf("topo: negative spec delay %d", s.DelayNS)
	}
	t := New(s.BandwidthBps, sim.Time(s.DelayNS))
	for i, ns := range s.Nodes {
		switch ns.Kind {
		case "host":
			t.AddHost(ns.Name)
		case "switch":
			t.AddSwitch(ns.Name)
		default:
			return nil, fmt.Errorf("topo: node %d has unknown kind %q", i, ns.Kind)
		}
	}
	for i, l := range s.Links {
		if l.A < 0 || l.A >= len(t.Nodes) || l.B < 0 || l.B >= len(t.Nodes) {
			return nil, fmt.Errorf("topo: link %d references missing node", i)
		}
		if l.APort < 0 || l.BPort < 0 {
			return nil, fmt.Errorf("topo: link %d has negative port", i)
		}
		// A node's port indices are dense — every index below the highest
		// must end up wired — so no valid spec can name a port at or above
		// the link count. Checking here keeps a hostile spec from making
		// growPorts allocate a multi-gigabyte port array for one link.
		if l.APort >= len(s.Links) || l.BPort >= len(s.Links) {
			return nil, fmt.Errorf("topo: link %d port index beyond what %d links could wire", i, len(s.Links))
		}
	}
	// Materialize port arrays at the pinned indices.
	for i, l := range s.Links {
		na, nb := t.Nodes[l.A], t.Nodes[l.B]
		growPorts(na, l.APort)
		growPorts(nb, l.BPort)
		if na.Ports[l.APort].occupied() || nb.Ports[l.BPort].occupied() {
			return nil, fmt.Errorf("topo: link %d reuses a port", i)
		}
		na.Ports[l.APort] = Port{Peer: NodeID(l.B), PeerPort: l.BPort}
		nb.Ports[l.BPort] = Port{Peer: NodeID(l.A), PeerPort: l.APort}
	}
	for _, n := range t.Nodes {
		for pi := range n.Ports {
			if !n.Ports[pi].occupied() {
				return nil, fmt.Errorf("topo: node %s port %d left unwired", n.Name, pi)
			}
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// occupied distinguishes a wired port from the zero value; Peer 0 port 0
// is a legal wiring, so emptiness is marked with PeerPort = -1 during
// reconstruction.
func (p Port) occupied() bool { return p.PeerPort >= 0 }

func growPorts(n *Node, idx int) {
	for len(n.Ports) <= idx {
		n.Ports = append(n.Ports, Port{PeerPort: -1})
	}
}

// MarshalJSON encodes the topology via its Spec.
func (t *Topology) MarshalJSON() ([]byte, error) { return json.Marshal(t.ToSpec()) }

// ParseSpecJSON decodes a Spec from JSON and builds the topology.
func ParseSpecJSON(data []byte) (*Topology, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("topo: spec json: %w", err)
	}
	return FromSpec(s)
}

package topo

import (
	"testing"
	"testing/quick"

	"hawkeye/internal/sim"
)

func TestFatTreeShape(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ft.Switches()); got != 20 {
		t.Fatalf("K=4 fat-tree has %d switches, want 20 (paper §4.1)", got)
	}
	if got := len(ft.Hosts()); got != 16 {
		t.Fatalf("K=4 fat-tree has %d hosts, want 16", got)
	}
	if len(ft.Core) != 4 {
		t.Fatalf("core count %d, want 4", len(ft.Core))
	}
	for pod := 0; pod < 4; pod++ {
		if len(ft.Agg[pod]) != 2 || len(ft.Edge[pod]) != 2 || len(ft.PodHosts[pod]) != 4 {
			t.Fatalf("pod %d shape wrong: %d agg %d edge %d hosts",
				pod, len(ft.Agg[pod]), len(ft.Edge[pod]), len(ft.PodHosts[pod]))
		}
	}
	// Port counts: edge = K/2 hosts + K/2 aggs = K; agg = K/2 edges + K/2
	// cores = K; core = K pods.
	for pod := 0; pod < 4; pod++ {
		for _, e := range ft.Edge[pod] {
			if n := len(ft.Node(e).Ports); n != 4 {
				t.Fatalf("edge switch has %d ports, want 4", n)
			}
		}
		for _, a := range ft.Agg[pod] {
			if n := len(ft.Node(a).Ports); n != 4 {
				t.Fatalf("agg switch has %d ports, want 4", n)
			}
		}
	}
	for _, c := range ft.Core {
		if n := len(ft.Node(c).Ports); n != 4 {
			t.Fatalf("core switch has %d ports, want 4", n)
		}
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	if _, err := NewFatTree(3); err == nil {
		t.Fatal("odd K accepted")
	}
	if _, err := NewFatTree(0); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestRoutingReachability(t *testing.T) {
	ft, _ := NewFatTree(4)
	r := ComputeRouting(ft.Topology)
	hosts := ft.Topology.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			path, err := r.Path(src, dst, 0)
			if err != nil {
				t.Fatalf("no path %v->%v: %v", src, dst, err)
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			// Fat-tree shortest paths: 3 nodes same ToR, 5 same pod, 7 cross-pod.
			if n := len(path); n != 3 && n != 5 && n != 7 {
				t.Fatalf("path length %d unexpected for fat-tree: %v", n, path)
			}
		}
	}
}

func TestRoutingECMPSpreads(t *testing.T) {
	ft, _ := NewFatTree(4)
	r := ComputeRouting(ft.Topology)
	// Cross-pod pairs must have multiple equal-cost first hops at the edge.
	src, dst := ft.PodHosts[0][0], ft.PodHosts[1][0]
	edge := ft.Edge[0][0]
	hops := r.NextHops(edge, dst)
	if len(hops) < 2 {
		t.Fatalf("edge switch has %d next hops cross-pod, want >= 2 (ECMP)", len(hops))
	}
	seen := map[int]bool{}
	for h := uint32(0); h < 16; h++ {
		p, ok := r.SelectPort(edge, dst, h)
		if !ok {
			t.Fatal("SelectPort failed")
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatal("ECMP hash never spread across next hops")
	}
	// Different hashes may take different core switches but must still reach dst.
	for h := uint32(0); h < 8; h++ {
		if _, err := r.Path(src, dst, h); err != nil {
			t.Fatalf("hash %d: %v", h, err)
		}
	}
}

func TestPortPathMatchesPath(t *testing.T) {
	ft, _ := NewFatTree(4)
	r := ComputeRouting(ft.Topology)
	src, dst := ft.PodHosts[0][0], ft.PodHosts[2][1]
	path, err := r.Path(src, dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := r.PortPath(src, dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != len(path)-1 {
		t.Fatalf("PortPath len %d, Path len %d", len(refs), len(path))
	}
	for i, ref := range refs {
		if ref.Node != path[i] {
			t.Fatalf("hop %d node %v != path %v", i, ref.Node, path[i])
		}
		peer, _ := ft.Topology.PeerOf(ref.Node, ref.Port)
		if peer != path[i+1] {
			t.Fatalf("hop %d leads to %v, want %v", i, peer, path[i+1])
		}
	}
}

func TestOverrideAndClear(t *testing.T) {
	ft, _ := NewFatTree(4)
	r := ComputeRouting(ft.Topology)
	dst := ft.PodHosts[1][0]
	edge := ft.Edge[0][0]
	orig := append([]int(nil), r.NextHops(edge, dst)...)
	r.Override(edge, dst, []int{orig[0]})
	if got := r.NextHops(edge, dst); len(got) != 1 || got[0] != orig[0] {
		t.Fatalf("override not honoured: %v", got)
	}
	r.ClearOverrides()
	if got := r.NextHops(edge, dst); len(got) != len(orig) {
		t.Fatalf("ClearOverrides did not restore: %v vs %v", got, orig)
	}
}

func TestRingClockwiseCreatesCycle(t *testing.T) {
	ring, err := NewRing(4, 1, DefaultBandwidth, DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := ComputeRouting(ring.Topology)
	ring.ForceClockwise(r, nil)
	// A flow from host at sw0 to host at sw3 must now go 0->1->2->3 (3 switch
	// hops) instead of the shortest counter-clockwise single hop.
	src := ring.HostsAt[0][0]
	dst := ring.HostsAt[3][0]
	path, err := r.Path(src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{src, ring.Switches[0], ring.Switches[1], ring.Switches[2], ring.Switches[3], dst}
	if len(path) != len(want) {
		t.Fatalf("clockwise path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("clockwise path %v, want %v", path, want)
		}
	}
}

func TestChainShape(t *testing.T) {
	d, err := NewChain(3, 2, DefaultBandwidth, DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Switches) != 3 || len(d.Topology.Hosts()) != 6 {
		t.Fatalf("chain shape wrong: %d switches %d hosts", len(d.Switches), len(d.Topology.Hosts()))
	}
	r := ComputeRouting(d.Topology)
	p, err := r.Path(d.HostsAt[0][0], d.HostsAt[2][1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 {
		t.Fatalf("end-to-end chain path length %d, want 5", len(p))
	}
}

func TestHostByIP(t *testing.T) {
	ft, _ := NewFatTree(4)
	for _, h := range ft.Topology.Hosts() {
		ip := ft.Node(h).IP
		got, ok := ft.Topology.HostByIP(ip)
		if !ok || got != h {
			t.Fatalf("HostByIP(%#x) = %v,%v want %v", ip, got, ok, h)
		}
	}
	if _, ok := ft.Topology.HostByIP(0xDEADBEEF); ok {
		t.Fatal("bogus IP resolved")
	}
}

func TestTransmitTime(t *testing.T) {
	tp := New(100e9, 2*sim.Microsecond)
	// 1250 bytes at 100 Gbps = 100 ns.
	if d := tp.TransmitTime(1250); d != 100 {
		t.Fatalf("TransmitTime(1250B @100G) = %v, want 100ns", d)
	}
}

func TestIsHostFacing(t *testing.T) {
	ft, _ := NewFatTree(4)
	edge := ft.Edge[0][0]
	hostFacing, switchFacing := 0, 0
	for pi := range ft.Node(edge).Ports {
		if ft.Topology.IsHostFacing(edge, pi) {
			hostFacing++
		} else {
			switchFacing++
		}
	}
	if hostFacing != 2 || switchFacing != 2 {
		t.Fatalf("edge ports: %d host-facing %d switch-facing, want 2/2", hostFacing, switchFacing)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	tp := New(100e9, sim.Microsecond)
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	tp.Connect(a, b)
	// Corrupt the back-pointer.
	tp.Nodes[b].Ports[0].PeerPort = 7
	if err := tp.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric link")
	}
}

func TestUnreachableDestination(t *testing.T) {
	tp := New(100e9, sim.Microsecond)
	h1 := tp.AddHost("h1")
	h2 := tp.AddHost("h2")
	s := tp.AddSwitch("s")
	tp.Connect(h1, s)
	_ = h2 // h2 intentionally disconnected
	r := ComputeRouting(tp)
	if _, err := r.Path(h1, h2, 0); err == nil {
		t.Fatal("path to disconnected host succeeded")
	}
}

func TestLeafSpineShape(t *testing.T) {
	ls, err := NewLeafSpine(2, 4, 4, DefaultBandwidth, DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ls.Switches()); got != 6 {
		t.Fatalf("2x4 leaf-spine has %d switches, want 6", got)
	}
	if got := len(ls.Hosts()); got != 16 {
		t.Fatalf("leaf-spine has %d hosts, want 16", got)
	}
	// Every leaf connects to every spine plus its hosts.
	for _, leaf := range ls.Leaves {
		if n := len(ls.Node(leaf).Ports); n != 4+2 {
			t.Fatalf("leaf has %d ports, want 6", n)
		}
	}
	for _, spine := range ls.Spines {
		if n := len(ls.Node(spine).Ports); n != 4 {
			t.Fatalf("spine has %d ports, want 4 (one per leaf)", n)
		}
	}
	// Cross-leaf routing goes exactly leaf -> spine -> leaf (2 switch hops
	// between leaves means 3-switch paths host to host).
	r := ComputeRouting(ls.Topology)
	refs, err := r.PortPath(ls.LeafHosts[0][0], ls.LeafHosts[3][2], 7)
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for _, ref := range refs {
		if ls.Node(ref.Node).Kind == KindSwitch {
			switches++
		}
	}
	if switches != 3 {
		t.Fatalf("cross-leaf path crosses %d switches, want 3 (leaf-spine-leaf)", switches)
	}
}

func TestLeafSpineRejectsBadShape(t *testing.T) {
	if _, err := NewLeafSpine(0, 4, 2, DefaultBandwidth, DefaultDelay); err == nil {
		t.Error("zero spines accepted")
	}
	if _, err := NewLeafSpine(2, 0, 2, DefaultBandwidth, DefaultDelay); err == nil {
		t.Error("zero leaves accepted")
	}
	if _, err := NewLeafSpine(2, 2, -1, DefaultBandwidth, DefaultDelay); err == nil {
		t.Error("negative hosts accepted")
	}
}

func TestSpecRoundTripFatTree(t *testing.T) {
	ft, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ft.Topology.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpecJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(ft.Topology.Nodes) {
		t.Fatalf("node count %d != %d", len(got.Nodes), len(ft.Topology.Nodes))
	}
	for i, want := range ft.Topology.Nodes {
		g := got.Nodes[i]
		if g.Kind != want.Kind || g.Name != want.Name || g.IP != want.IP {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, g, want)
		}
		if len(g.Ports) != len(want.Ports) {
			t.Fatalf("node %d port count %d != %d", i, len(g.Ports), len(want.Ports))
		}
		for pi := range want.Ports {
			if g.Ports[pi] != want.Ports[pi] {
				t.Fatalf("node %d port %d mismatch", i, pi)
			}
		}
	}
	if got.LinkBandwidth != ft.Topology.LinkBandwidth || got.LinkDelay != ft.Topology.LinkDelay {
		t.Fatal("link properties lost")
	}
	// Routing computed on the reconstruction must match: same ECMP port
	// choices for the same hash on every host pair.
	r1 := ComputeRouting(ft.Topology)
	r2 := ComputeRouting(got)
	hosts := ft.Topology.Hosts()
	for _, a := range hosts[:4] {
		for _, b := range hosts[len(hosts)-4:] {
			if a == b {
				continue
			}
			for h := uint32(0); h < 8; h++ {
				p1, _ := r1.PortPath(a, b, h)
				p2, _ := r2.PortPath(a, b, h)
				if len(p1) != len(p2) {
					t.Fatalf("path length differs for %d->%d hash %d", a, b, h)
				}
				for i := range p1 {
					if p1[i] != p2[i] {
						t.Fatalf("path differs for %d->%d hash %d at hop %d", a, b, h, i)
					}
				}
			}
		}
	}
}

func TestSpecRejectsMalformed(t *testing.T) {
	good := func() Spec {
		tp := New(100e9, DefaultDelay)
		h := tp.AddHost("h")
		s := tp.AddSwitch("s")
		tp.Connect(h, s)
		return tp.ToSpec()
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero bandwidth", func(s *Spec) { s.BandwidthBps = 0 }},
		{"negative delay", func(s *Spec) { s.DelayNS = -1 }},
		{"bad kind", func(s *Spec) { s.Nodes[0].Kind = "router" }},
		{"dangling link", func(s *Spec) { s.Links[0].B = 99 }},
		{"negative port", func(s *Spec) { s.Links[0].APort = -2 }},
		{"port reuse", func(s *Spec) { s.Links = append(s.Links, s.Links[0]) }},
		{"port hole", func(s *Spec) { s.Links[0].APort = 5 }},
		// A hostile spec naming a huge port index must be refused before
		// growPorts materializes a multi-gigabyte port array.
		{"giant port index", func(s *Spec) { s.Links[0].APort = 1 << 30 }},
		{"giant peer port index", func(s *Spec) { s.Links[0].BPort = 1 << 30 }},
	}
	for _, c := range cases {
		s := good()
		c.mut(&s)
		if _, err := FromSpec(s); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestRoutingPathInvariantsProperty checks, over random host pairs and
// ECMP hashes on several topologies, that every resolved path is
// loop-free, connected (each hop's port really leads to the next node)
// and terminates at the destination.
func TestRoutingPathInvariantsProperty(t *testing.T) {
	type fabric struct {
		name string
		t    *Topology
	}
	var fabrics []fabric
	for _, k := range []int{4, 6} {
		ft, err := NewFatTree(k)
		if err != nil {
			t.Fatal(err)
		}
		fabrics = append(fabrics, fabric{name: "fat-tree", t: ft.Topology})
	}
	ls, err := NewLeafSpine(3, 4, 3, DefaultBandwidth, DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	fabrics = append(fabrics, fabric{name: "leaf-spine", t: ls.Topology})

	for _, f := range fabrics {
		r := ComputeRouting(f.t)
		hosts := f.t.Hosts()
		prop := func(si, di uint16, hash uint32) bool {
			src := hosts[int(si)%len(hosts)]
			dst := hosts[int(di)%len(hosts)]
			if src == dst {
				return true
			}
			refs, err := r.PortPath(src, dst, hash)
			if err != nil {
				return false
			}
			seen := map[NodeID]bool{}
			cur := src
			for _, ref := range refs {
				if ref.Node != cur || seen[cur] {
					return false
				}
				seen[cur] = true
				cur, _ = f.t.PeerOf(ref.Node, ref.Port)
			}
			return cur == dst
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", f.name, err)
		}
	}
}

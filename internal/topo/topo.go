// Package topo models the physical network: nodes (hosts and switches),
// point-to-point links between node ports, routing tables with ECMP
// next-hop sets, and builders for the evaluation topologies (fat-tree K=4
// as in the paper's NS-3 setup, plus small line/ring fabrics for tests).
//
// The package is pure graph math — no simulation state — so routing,
// path enumeration and misconfiguration injection are all unit-testable
// in isolation.
package topo

import (
	"fmt"

	"hawkeye/internal/sim"
)

// NodeID identifies a node. IDs are dense indices into Topology.Nodes.
type NodeID int

// Kind distinguishes hosts from switches.
type Kind uint8

const (
	// KindHost is an end host with a single NIC port.
	KindHost Kind = iota
	// KindSwitch is a multi-port switch.
	KindSwitch
)

func (k Kind) String() string {
	if k == KindHost {
		return "host"
	}
	return "switch"
}

// Port is one end of a link.
type Port struct {
	Peer     NodeID // node on the other end
	PeerPort int    // port index on the peer
}

// Node is a host or switch with a fixed set of ports.
type Node struct {
	ID    NodeID
	Kind  Kind
	Name  string
	IP    uint32 // hosts only: the address data packets carry
	Ports []Port
}

// PortRef names a specific egress port on a specific node, the unit the
// provenance graph reasons about ("SW2.P3" in the paper).
type PortRef struct {
	Node NodeID
	Port int
}

func (p PortRef) String() string { return fmt.Sprintf("N%d.P%d", p.Node, p.Port) }

// Topology is an immutable network graph plus link properties. The
// evaluation uses uniform link speeds (100 Gbps, 2 µs), so properties are
// topology-wide; per-link overrides were not needed by any experiment.
type Topology struct {
	Nodes []*Node

	// LinkBandwidth is the speed of every link in bits per second.
	LinkBandwidth float64
	// LinkDelay is the one-way propagation delay of every link.
	LinkDelay sim.Time

	hosts    []NodeID
	switches []NodeID
	byIP     map[uint32]NodeID
}

// New returns an empty topology with the given link properties.
func New(bandwidthBps float64, delay sim.Time) *Topology {
	return &Topology{
		LinkBandwidth: bandwidthBps,
		LinkDelay:     delay,
		byIP:          make(map[uint32]NodeID),
	}
}

// hostIPBase gives hosts addresses 10.0.0.1, 10.0.0.2, ...
const hostIPBase = 0x0A000001

// AddHost appends a host node and assigns it the next address.
func (t *Topology) AddHost(name string) NodeID {
	id := NodeID(len(t.Nodes))
	ip := uint32(hostIPBase + len(t.hosts))
	t.Nodes = append(t.Nodes, &Node{ID: id, Kind: KindHost, Name: name, IP: ip})
	t.hosts = append(t.hosts, id)
	t.byIP[ip] = id
	return id
}

// AddSwitch appends a switch node.
func (t *Topology) AddSwitch(name string) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, &Node{ID: id, Kind: KindSwitch, Name: name})
	t.switches = append(t.switches, id)
	return id
}

// Connect wires a new bidirectional link between a and b and returns the
// port index allocated on each side.
func (t *Topology) Connect(a, b NodeID) (portA, portB int) {
	na, nb := t.Nodes[a], t.Nodes[b]
	portA, portB = len(na.Ports), len(nb.Ports)
	na.Ports = append(na.Ports, Port{Peer: b, PeerPort: portB})
	nb.Ports = append(nb.Ports, Port{Peer: a, PeerPort: portA})
	return portA, portB
}

// Hosts returns the host node IDs in creation order.
func (t *Topology) Hosts() []NodeID { return t.hosts }

// Switches returns the switch node IDs in creation order.
func (t *Topology) Switches() []NodeID { return t.switches }

// HostByIP resolves an address to its host node.
func (t *Topology) HostByIP(ip uint32) (NodeID, bool) {
	id, ok := t.byIP[ip]
	return id, ok
}

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return t.Nodes[id] }

// PeerOf returns the node and port on the far side of (node, port).
func (t *Topology) PeerOf(node NodeID, port int) (NodeID, int) {
	p := t.Nodes[node].Ports[port]
	return p.Peer, p.PeerPort
}

// IsHostFacing reports whether the egress port of node faces a host.
func (t *Topology) IsHostFacing(node NodeID, port int) bool {
	peer, _ := t.PeerOf(node, port)
	return t.Nodes[peer].Kind == KindHost
}

// TransmitTime returns the serialization delay of size bytes on a link.
func (t *Topology) TransmitTime(sizeBytes int) sim.Time {
	return sim.Time(float64(sizeBytes*8) / t.LinkBandwidth * 1e9)
}

// Validate checks structural invariants: port symmetry, hosts with exactly
// one port, and IP uniqueness. Builders call it; tests call it on mutated
// topologies.
func (t *Topology) Validate() error {
	for _, n := range t.Nodes {
		if n.Kind == KindHost && len(n.Ports) != 1 {
			return fmt.Errorf("topo: host %s has %d ports, want 1", n.Name, len(n.Ports))
		}
		for pi, p := range n.Ports {
			peer := t.Nodes[p.Peer]
			if p.PeerPort >= len(peer.Ports) {
				return fmt.Errorf("topo: %s port %d points past peer %s ports", n.Name, pi, peer.Name)
			}
			back := peer.Ports[p.PeerPort]
			if back.Peer != n.ID || back.PeerPort != pi {
				return fmt.Errorf("topo: link %s.%d <-> %s.%d not symmetric", n.Name, pi, peer.Name, p.PeerPort)
			}
		}
	}
	return nil
}

package topo

import "testing"

func TestPodLabel(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"agg2-1", "pod2"},
		{"agg10-0", "pod10"},
		{"edge0-3", "pod0"},
		{"h3-1-2", "pod3"},   // fat-tree host: pod 3
		{"h12-0-7", "pod12"}, // multi-digit pod
		{"core1", ""},        // core tier has no pod
		{"sw4", ""},          // chain switch
		{"leaf2", ""},        // leaf-spine
		{"spine0", ""},
		{"h1-2", ""},  // chain/leaf-spine host: one dash, no pod tier
		{"h5", ""},    // bare host name
		{"agg-1", ""}, // malformed: no digits after the tier prefix
		{"edge", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := PodLabel(c.name); got != c.want {
			t.Errorf("PodLabel(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestPodLabelMatchesFatTreeBuilder pins the convention against the
// builder itself: every non-core switch and every host in a fat-tree
// carries a pod label, and core switches never do.
func TestPodLabelMatchesFatTreeBuilder(t *testing.T) {
	d, err := NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for _, n := range d.Topology.Nodes {
		label := PodLabel(n.Name)
		if len(n.Name) >= 4 && n.Name[:4] == "core" {
			if label != "" {
				t.Fatalf("core switch %s labeled %q", n.Name, label)
			}
			continue
		}
		if label == "" {
			t.Fatalf("fat-tree node %s has no pod label", n.Name)
		}
		labeled++
	}
	if labeled == 0 {
		t.Fatal("no labeled nodes in fat-tree")
	}
}

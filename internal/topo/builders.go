package topo

import (
	"fmt"

	"hawkeye/internal/sim"
)

// Evaluation defaults matching the paper's NS-3 setup (§4.1): 100 Gbps
// links with 2 µs propagation delay.
const (
	DefaultBandwidth = 100e9
	DefaultDelay     = 2 * sim.Microsecond
)

// FatTree describes a built K-ary fat-tree: node IDs grouped by role so
// scenarios can pick injection points ("the second edge switch in pod 0").
type FatTree struct {
	*Topology
	K        int
	Core     []NodeID   // (K/2)^2 core switches
	Agg      [][]NodeID // [pod][i] aggregation switches
	Edge     [][]NodeID // [pod][i] edge (ToR) switches
	PodHosts [][]NodeID // [pod][edge*K/2+i] hosts under each pod
}

// NewFatTree builds a K-ary fat-tree with default link properties.
// K must be even and >= 2. K=4 yields the paper's 20-switch topology
// (4 core, 8 aggregation, 8 edge) with 16 hosts.
func NewFatTree(k int) (*FatTree, error) {
	return NewFatTreeLinks(k, DefaultBandwidth, DefaultDelay)
}

// NewFatTreeLinks builds a K-ary fat-tree with explicit link properties.
func NewFatTreeLinks(k int, bandwidthBps float64, delay sim.Time) (*FatTree, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree K must be even and >= 2, got %d", k)
	}
	t := New(bandwidthBps, delay)
	half := k / 2
	ft := &FatTree{Topology: t, K: k}

	for i := 0; i < half*half; i++ {
		ft.Core = append(ft.Core, t.AddSwitch(fmt.Sprintf("core%d", i)))
	}
	for pod := 0; pod < k; pod++ {
		var aggs, edges, hosts []NodeID
		for i := 0; i < half; i++ {
			aggs = append(aggs, t.AddSwitch(fmt.Sprintf("agg%d-%d", pod, i)))
		}
		for i := 0; i < half; i++ {
			edges = append(edges, t.AddSwitch(fmt.Sprintf("edge%d-%d", pod, i)))
		}
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				host := t.AddHost(fmt.Sprintf("h%d-%d-%d", pod, e, h))
				hosts = append(hosts, host)
				t.Connect(host, edges[e])
			}
			for a := 0; a < half; a++ {
				t.Connect(edges[e], aggs[a])
			}
		}
		// Aggregation switch i connects to core switches [i*half, (i+1)*half).
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				t.Connect(aggs[a], ft.Core[a*half+c])
			}
		}
		ft.Agg = append(ft.Agg, aggs)
		ft.Edge = append(ft.Edge, edges)
		ft.PodHosts = append(ft.PodHosts, hosts)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return ft, nil
}

// Dumbbell describes a linear chain of switches with fan hosts on each,
// the shape of the paper's Fig. 1(a)/(b) examples and the Tofino testbed
// (2 logical switches, 2 servers each).
type Dumbbell struct {
	*Topology
	Switches []NodeID
	// HostsAt[i] lists the hosts attached to switch i.
	HostsAt [][]NodeID
}

// NewChain builds numSwitches switches in a line with hostsPerSwitch
// hosts on each, using explicit link properties.
func NewChain(numSwitches, hostsPerSwitch int, bandwidthBps float64, delay sim.Time) (*Dumbbell, error) {
	if numSwitches < 1 || hostsPerSwitch < 0 {
		return nil, fmt.Errorf("topo: bad chain shape %dx%d", numSwitches, hostsPerSwitch)
	}
	t := New(bandwidthBps, delay)
	d := &Dumbbell{Topology: t}
	for i := 0; i < numSwitches; i++ {
		d.Switches = append(d.Switches, t.AddSwitch(fmt.Sprintf("sw%d", i)))
	}
	for i := 0; i+1 < numSwitches; i++ {
		t.Connect(d.Switches[i], d.Switches[i+1])
	}
	for i := 0; i < numSwitches; i++ {
		var hosts []NodeID
		for h := 0; h < hostsPerSwitch; h++ {
			host := t.AddHost(fmt.Sprintf("h%d-%d", i, h))
			t.Connect(host, d.Switches[i])
			hosts = append(hosts, host)
		}
		d.HostsAt = append(d.HostsAt, hosts)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LeafSpine describes a two-tier Clos: every leaf (ToR) connects to every
// spine, hosts hang off the leaves. This is the shape of the paper's
// hardware testbed (§4.1) and of most production RDMA pods.
type LeafSpine struct {
	*Topology
	Spines []NodeID
	Leaves []NodeID
	// LeafHosts[i] lists the hosts attached to leaf i.
	LeafHosts [][]NodeID
}

// NewLeafSpine builds a leaf-spine with the given tier widths and
// hosts per leaf, using explicit link properties.
func NewLeafSpine(spines, leaves, hostsPerLeaf int, bandwidthBps float64, delay sim.Time) (*LeafSpine, error) {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 0 {
		return nil, fmt.Errorf("topo: bad leaf-spine shape %d/%d/%d", spines, leaves, hostsPerLeaf)
	}
	t := New(bandwidthBps, delay)
	ls := &LeafSpine{Topology: t}
	for s := 0; s < spines; s++ {
		ls.Spines = append(ls.Spines, t.AddSwitch(fmt.Sprintf("spine%d", s)))
	}
	for l := 0; l < leaves; l++ {
		leaf := t.AddSwitch(fmt.Sprintf("leaf%d", l))
		ls.Leaves = append(ls.Leaves, leaf)
		var hosts []NodeID
		for h := 0; h < hostsPerLeaf; h++ {
			host := t.AddHost(fmt.Sprintf("h%d-%d", l, h))
			t.Connect(host, leaf)
			hosts = append(hosts, host)
		}
		ls.LeafHosts = append(ls.LeafHosts, hosts)
		for _, spine := range ls.Spines {
			t.Connect(leaf, spine)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return ls, nil
}

// Ring describes switches connected in a cycle, each with attached hosts.
// With routes forced around the cycle this is the minimal substrate for
// PFC deadlock (cyclic buffer dependency) scenarios.
type Ring struct {
	*Topology
	Switches []NodeID
	HostsAt  [][]NodeID
	// RingPort[i] is the egress port on switch i toward switch (i+1)%N.
	RingPort []int
}

// NewRing builds numSwitches switches in a cycle with hostsPerSwitch
// hosts each.
func NewRing(numSwitches, hostsPerSwitch int, bandwidthBps float64, delay sim.Time) (*Ring, error) {
	if numSwitches < 3 {
		return nil, fmt.Errorf("topo: ring needs >= 3 switches, got %d", numSwitches)
	}
	t := New(bandwidthBps, delay)
	r := &Ring{Topology: t}
	for i := 0; i < numSwitches; i++ {
		r.Switches = append(r.Switches, t.AddSwitch(fmt.Sprintf("sw%d", i)))
	}
	r.RingPort = make([]int, numSwitches)
	for i := 0; i < numSwitches; i++ {
		j := (i + 1) % numSwitches
		pa, _ := t.Connect(r.Switches[i], r.Switches[j])
		r.RingPort[i] = pa
	}
	for i := 0; i < numSwitches; i++ {
		var hosts []NodeID
		for h := 0; h < hostsPerSwitch; h++ {
			host := t.AddHost(fmt.Sprintf("h%d-%d", i, h))
			t.Connect(host, r.Switches[i])
			hosts = append(hosts, host)
		}
		r.HostsAt = append(r.HostsAt, hosts)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// ForceClockwise overrides routing so traffic between ring switches always
// travels clockwise (i -> i+1 -> ...), creating the cyclic buffer
// dependency the deadlock scenarios need. dsts limits the override to the
// given destination hosts (nil = all hosts).
func (r *Ring) ForceClockwise(routing *Routing, dsts []NodeID) {
	if dsts == nil {
		dsts = r.Topology.Hosts()
	}
	for i, sw := range r.Switches {
		for _, dst := range dsts {
			// Keep direct host attachments local; everything else goes
			// clockwise.
			local := false
			for _, h := range r.HostsAt[i] {
				if h == dst {
					local = true
					break
				}
			}
			if local {
				continue
			}
			routing.Override(sw, dst, []int{r.RingPort[i]})
		}
	}
}

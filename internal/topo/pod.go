package topo

// PodLabel derives the pod-tier label of a node from the builder
// naming convention: fat-tree aggregation and edge switches encode
// their pod as "agg<P>-<i>" / "edge<P>-<i>", and fat-tree hosts as
// "h<P>-<e>-<h>". Core switches and flat topologies (chain "sw<N>",
// leaf-spine "leaf<N>"/"spine<N>") have no pod tier and return "".
func PodLabel(name string) string {
	var digits string
	switch {
	case len(name) > 3 && name[:3] == "agg":
		digits = leadingDigits(name[3:])
	case len(name) > 4 && name[:4] == "edge":
		digits = leadingDigits(name[4:])
	case len(name) > 1 && name[0] == 'h':
		// Only fat-tree hosts ("h<P>-<e>-<h>", two dashes) carry a pod;
		// chain/leaf-spine hosts ("h<N>-<M>") do not.
		if countByte(name, '-') != 2 {
			return ""
		}
		digits = leadingDigits(name[1:])
	default:
		return ""
	}
	if digits == "" {
		return ""
	}
	return "pod" + digits
}

func leadingDigits(s string) string {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return s[:i]
}

func countByte(s string, b byte) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			n++
		}
	}
	return n
}

// Package metrics scores diagnosis results against scenario ground truth
// (precision/recall, the paper's §4.2 definitions) and renders the
// experiment tables.
package metrics

import (
	"fmt"
	"strings"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

// ScoreConfig sets the strictness of root-cause matching.
type ScoreConfig struct {
	// CulpritRecall: minimum fraction of true culprit flows that must be
	// reported for a contention diagnosis to count as correct.
	CulpritRecall float64
	// CulpritPrecision: minimum fraction of reported flows that must be
	// true culprits.
	CulpritPrecision float64
	// CheckInitial requires the initial congestion point to land on one
	// of the ground truth's admissible switches.
	CheckInitial bool
}

// DefaultScoreConfig mirrors the paper's true-positive definition: "it
// identifies both the exact anomaly case and the corresponding root
// causes".
func DefaultScoreConfig() ScoreConfig {
	return ScoreConfig{CulpritRecall: 0.3, CulpritPrecision: 0.5, CheckInitial: true}
}

// TrialScore is the outcome of one trace.
type TrialScore struct {
	Detected bool // a diagnosis was produced for a legitimate victim
	Correct  bool // ... and it matched the ground truth
	Reason   string
	Result   *core.Result // the scored diagnosis (nil if none)
}

// PR accumulates precision/recall counts across trials.
type PR struct {
	TP, FP, FN int
}

// Add folds a trial into the counters: undetected anomalies are false
// negatives; detected-but-wrong diagnoses are false positives.
func (p *PR) Add(t TrialScore) {
	switch {
	case !t.Detected:
		p.FN++
	case t.Correct:
		p.TP++
	default:
		p.FP++
	}
}

// Precision returns TP/(TP+FP), or 1 when nothing was reported.
func (p PR) Precision() float64 {
	if p.TP+p.FP == 0 {
		return 1
	}
	return float64(p.TP) / float64(p.TP+p.FP)
}

// Recall returns TP/(TP+FN), or 1 when no anomalies existed.
func (p PR) Recall() float64 {
	if p.TP+p.FN == 0 {
		return 1
	}
	return float64(p.TP) / float64(p.TP+p.FN)
}

func (p PR) String() string {
	return fmt.Sprintf("precision=%.2f recall=%.2f (tp=%d fp=%d fn=%d)",
		p.Precision(), p.Recall(), p.TP, p.FP, p.FN)
}

// ScoreResults scores a trial: it picks the first (freshest) diagnosis
// whose trigger victim belongs to the ground truth's victim set and
// checks it. Later re-triggers of a long-lived anomaly see aged
// telemetry; the operator acts on the first report (§3.4 dedup exists for
// exactly this reason).
func ScoreResults(cfg ScoreConfig, results []*core.Result, gt *workload.GroundTruth, t *topo.Topology) TrialScore {
	after := gt.AnomalyAt
	if gt.ScoreAfter > after {
		after = gt.ScoreAfter
	}
	var res *core.Result
	for _, r := range results {
		// Pre-anomaly triggers belong to unrelated (background) congestion,
		// and triggers before the anomaly matured see its transitional
		// form; the scored complaint is the first one after both.
		if gt.Victims[r.Trigger.Victim] && r.Trigger.At >= after {
			res = r
			break
		}
	}
	if res == nil {
		return TrialScore{Reason: "no diagnosis for any victim flow"}
	}
	score := TrialScore{Detected: true, Result: res}
	d := res.Diagnosis
	typeOK := d.Type == gt.Type
	for _, alt := range gt.AltTypes {
		typeOK = typeOK || d.Type == alt
	}
	if !typeOK {
		score.Reason = fmt.Sprintf("type %v, want %v", d.Type, gt.Type)
		return score
	}
	cause := d.PrimaryCause()
	if cfg.CheckInitial && len(gt.InitialSwitches) > 0 && !gt.InitialSwitches[cause.Port.Node] {
		score.Reason = fmt.Sprintf("initial point %v not in admissible set", cause.Port)
		return score
	}
	switch cause.Kind {
	case diagnosis.CauseHostInjection, diagnosis.CauseSlowReceiver,
		diagnosis.CauseHostProcessingBound, diagnosis.CauseHostPauseStorm:
		peer, _ := t.PeerOf(cause.Port.Node, cause.Port.Port)
		if peer != gt.Injector {
			score.Reason = fmt.Sprintf("injector %v, want %v", peer, gt.Injector)
			return score
		}
		// A host-pathology ground truth admits the refined kind or the
		// generic injection verdict (the degraded form when host-agent
		// counters are unavailable) — but never a DIFFERENT refined
		// pathology: misnaming the host's failure mode sends the operator
		// down the wrong runbook.
		if gt.HostCause.IsHostSide() &&
			cause.Kind != gt.HostCause && cause.Kind != diagnosis.CauseHostInjection {
			score.Reason = fmt.Sprintf("host pathology %v, want %v", cause.Kind, gt.HostCause)
			return score
		}
	case diagnosis.CauseFlowContention:
		if len(gt.Culprits) == 0 {
			score.Reason = "contention reported for an injection anomaly"
			return score
		}
		hit := 0
		for _, f := range cause.Flows {
			if gt.Culprits[f] {
				hit++
			}
		}
		if len(cause.Flows) == 0 ||
			float64(hit)/float64(len(gt.Culprits)) < cfg.CulpritRecall ||
			float64(hit)/float64(len(cause.Flows)) < cfg.CulpritPrecision {
			score.Reason = fmt.Sprintf("culprits %d/%d hit among %d reported",
				hit, len(gt.Culprits), len(cause.Flows))
			return score
		}
	}
	score.Correct = true
	score.Reason = "ok"
	return score
}

// Table renders experiment rows with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Ratio formats a/b defensively.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

package metrics

import "fmt"

// RobustnessPoint is one operating point of a robustness curve: the
// diagnosis quality measured while the chaos engine injects faults at
// the given rate.
type RobustnessPoint struct {
	// FaultRate is the injected fault probability for this point
	// (interpretation depends on the sweep: telemetry-epoch loss,
	// collection drop, ...).
	FaultRate float64
	// PR aggregates precision/recall over the point's trials.
	PR PR
	// Trials is how many traces were scored into PR.
	Trials int
	// AvgConfidence averages the scored diagnoses' confidence scores.
	// The whole point of degraded-mode diagnosis: this must fall as
	// FaultRate rises.
	AvgConfidence float64
	// HighConfWrong counts diagnoses that were wrong yet graded
	// high-confidence — the failure mode the confidence model exists to
	// prevent. Anything nonzero is a bug in the evidence assessment.
	HighConfWrong int
}

// RobustnessCurve is a fault-rate sweep for one scenario.
type RobustnessCurve struct {
	Name   string
	Points []RobustnessPoint
}

// Table renders the curve as an experiment table.
func (c *RobustnessCurve) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("robustness: %s", c.Name),
		Headers: []string{"fault-rate", "precision", "recall", "avg-conf", "high-conf-wrong", "trials"},
	}
	for _, p := range c.Points {
		t.AddRow(
			fmt.Sprintf("%.2f", p.FaultRate),
			fmt.Sprintf("%.2f", p.PR.Precision()),
			fmt.Sprintf("%.2f", p.PR.Recall()),
			fmt.Sprintf("%.2f", p.AvgConfidence),
			fmt.Sprintf("%d", p.HighConfWrong),
			fmt.Sprintf("%d", p.Trials),
		)
	}
	return t
}

package metrics

import (
	"strings"
	"testing"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/provenance"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

func tup(n uint32) packet.FiveTuple {
	return packet.FiveTuple{SrcIP: n, DstIP: 100 + n, SrcPort: 1, DstPort: 2, Proto: 17}
}

// scaffolding: a 2-node topology (switch + hosts) for PeerOf resolution.
func miniTopo() (*topo.Topology, topo.NodeID, topo.NodeID) {
	tp := topo.New(100e9, sim.Microsecond)
	h := tp.AddHost("h")
	sw := tp.AddSwitch("sw")
	tp.Connect(h, sw)
	return tp, sw, h
}

func result(victim packet.FiveTuple, at sim.Time, d *diagnosis.Report) *core.Result {
	return &core.Result{
		Trigger:   host.Trigger{Victim: victim, At: at},
		Diagnosis: d,
	}
}

func gtContention(victim, culprit packet.FiveTuple, sw topo.NodeID) *workload.GroundTruth {
	return &workload.GroundTruth{
		Type:            diagnosis.TypePFCContention,
		Culprits:        map[packet.FiveTuple]bool{culprit: true},
		InitialSwitches: map[topo.NodeID]bool{sw: true},
		Victims:         map[packet.FiveTuple]bool{victim: true},
		AnomalyAt:       100,
	}
}

func diagContention(victim, culprit packet.FiveTuple, port topo.PortRef) *diagnosis.Report {
	return &diagnosis.Report{
		Victim: victim,
		Type:   diagnosis.TypePFCContention,
		Causes: []diagnosis.RootCause{{
			Kind:  diagnosis.CauseFlowContention,
			Port:  port,
			Flows: []packet.FiveTuple{culprit},
		}},
	}
}

func TestScoreCorrectContention(t *testing.T) {
	tp, sw, _ := miniTopo()
	v, c := tup(1), tup(2)
	gt := gtContention(v, c, sw)
	res := result(v, 200, diagContention(v, c, topo.PortRef{Node: sw, Port: 0}))
	s := ScoreResults(DefaultScoreConfig(), []*core.Result{res}, gt, tp)
	if !s.Detected || !s.Correct {
		t.Fatalf("score: %+v", s)
	}
}

func TestScoreRejectsWrongType(t *testing.T) {
	tp, sw, _ := miniTopo()
	v, c := tup(1), tup(2)
	gt := gtContention(v, c, sw)
	d := diagContention(v, c, topo.PortRef{Node: sw, Port: 0})
	d.Type = diagnosis.TypePFCStorm
	s := ScoreResults(DefaultScoreConfig(), []*core.Result{result(v, 200, d)}, gt, tp)
	if !s.Detected || s.Correct {
		t.Fatalf("wrong type accepted: %+v", s)
	}
}

func TestScoreAltTypesAccepted(t *testing.T) {
	tp, sw, _ := miniTopo()
	v, c := tup(1), tup(2)
	gt := gtContention(v, c, sw)
	gt.Type = diagnosis.TypeOutLoopDeadlockContention
	gt.AltTypes = []diagnosis.AnomalyType{diagnosis.TypePFCContention}
	d := diagContention(v, c, topo.PortRef{Node: sw, Port: 0})
	s := ScoreResults(DefaultScoreConfig(), []*core.Result{result(v, 200, d)}, gt, tp)
	if !s.Correct {
		t.Fatalf("alt type rejected: %s", s.Reason)
	}
}

func TestScoreSkipsPreAnomalyAndNonVictims(t *testing.T) {
	tp, sw, _ := miniTopo()
	v, c := tup(1), tup(2)
	gt := gtContention(v, c, sw)
	early := result(v, 50, diagContention(v, c, topo.PortRef{Node: sw, Port: 0}))       // pre-anomaly
	other := result(tup(9), 200, diagContention(v, c, topo.PortRef{Node: sw, Port: 0})) // not a victim
	good := result(v, 300, diagContention(v, c, topo.PortRef{Node: sw, Port: 0}))
	s := ScoreResults(DefaultScoreConfig(), []*core.Result{early, other, good}, gt, tp)
	if !s.Correct || s.Result != good {
		t.Fatalf("wrong result scored: %+v", s)
	}
}

func TestScoreRespectsScoreAfter(t *testing.T) {
	tp, sw, _ := miniTopo()
	v, c := tup(1), tup(2)
	gt := gtContention(v, c, sw)
	gt.ScoreAfter = 500
	early := result(v, 300, diagContention(v, c, topo.PortRef{Node: sw, Port: 0}))
	s := ScoreResults(DefaultScoreConfig(), []*core.Result{early}, gt, tp)
	if s.Detected {
		t.Fatalf("pre-maturity trigger scored: %+v", s)
	}
}

func TestScoreCulpritThresholds(t *testing.T) {
	tp, sw, _ := miniTopo()
	v := tup(1)
	gt := gtContention(v, tup(2), sw)
	gt.Culprits[tup(3)] = true
	gt.Culprits[tup(4)] = true // 3 culprits; recall 0.3 needs >= 1
	// Report one culprit among one reported: recall 1/3, precision 1/1.
	d := diagContention(v, tup(2), topo.PortRef{Node: sw, Port: 0})
	if s := ScoreResults(DefaultScoreConfig(), []*core.Result{result(v, 200, d)}, gt, tp); !s.Correct {
		t.Fatalf("threshold pass failed: %s", s.Reason)
	}
	// Report one culprit among three reported: precision 1/3 < 0.5.
	d.Causes[0].Flows = []packet.FiveTuple{tup(2), tup(8), tup(9)}
	if s := ScoreResults(DefaultScoreConfig(), []*core.Result{result(v, 200, d)}, gt, tp); s.Correct {
		t.Fatal("low-precision culprit set accepted")
	}
}

func TestScoreInjection(t *testing.T) {
	tp, sw, h := miniTopo()
	v := tup(1)
	gt := &workload.GroundTruth{
		Type:            diagnosis.TypePFCStorm,
		Injector:        h,
		InitialSwitches: map[topo.NodeID]bool{sw: true},
		Victims:         map[packet.FiveTuple]bool{v: true},
		AnomalyAt:       100,
	}
	d := &diagnosis.Report{
		Victim: v,
		Type:   diagnosis.TypePFCStorm,
		Causes: []diagnosis.RootCause{{
			Kind:               diagnosis.CauseHostInjection,
			Port:               topo.PortRef{Node: sw, Port: 0}, // faces h
			InjectorHostFacing: true,
		}},
	}
	if s := ScoreResults(DefaultScoreConfig(), []*core.Result{result(v, 200, d)}, gt, tp); !s.Correct {
		t.Fatalf("injection score: %s", s.Reason)
	}
}

func TestPRMath(t *testing.T) {
	var pr PR
	pr.Add(TrialScore{Detected: true, Correct: true})
	pr.Add(TrialScore{Detected: true, Correct: false})
	pr.Add(TrialScore{Detected: false})
	if pr.TP != 1 || pr.FP != 1 || pr.FN != 1 {
		t.Fatalf("counters: %+v", pr)
	}
	if pr.Precision() != 0.5 || pr.Recall() != 0.5 {
		t.Fatalf("P=%v R=%v", pr.Precision(), pr.Recall())
	}
	var empty PR
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("empty PR not vacuous-true")
	}
	if !strings.Contains(pr.String(), "precision=0.50") {
		t.Fatalf("PR string: %s", pr.String())
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tab.AddRow("x", "y")
	tab.AddRow("longer", "z")
	s := tab.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "longer") {
		t.Fatalf("table:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count %d:\n%s", len(lines), s)
	}
}

func TestMeanAndRatio(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean broken")
	}
	if Ratio(1, 0) != 0 || Ratio(6, 3) != 2 {
		t.Fatal("Ratio broken")
	}
}

// Silence unused-import warnings for provenance (kept for Result.Graph type).
var _ = provenance.NewGraph

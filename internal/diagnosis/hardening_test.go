package diagnosis

import (
	"strings"
	"testing"

	"hawkeye/internal/topo"
)

// Detected corruption must cap the grade: a diagnosis drawn from evidence
// that admission had to reject or clamp can be right, but it cannot be
// *confidently* right.

func TestConfidenceCappedByRejectedReports(t *testing.T) {
	tp := testTopo(t)
	clean := contentionGraph()
	setEvidence(clean, ref(0, 0), ref(1, 1), 6)
	setCoverage(clean, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
	cleanRep := Diagnose(DefaultConfig(), clean, tp, flowT(1))
	if cleanRep.Confidence != ConfHigh {
		t.Fatalf("baseline not high: %v", cleanRep.Confidence)
	}

	poisoned := contentionGraph()
	setEvidence(poisoned, ref(0, 0), ref(1, 1), 6)
	setCoverage(poisoned, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
	poisoned.Coverage.NoteRejected(1)
	rep := Diagnose(DefaultConfig(), poisoned, tp, flowT(1))
	if rep.Confidence == ConfHigh {
		t.Fatalf("rejected report left confidence high (%.2f)", rep.ConfidenceScore)
	}
	found := false
	for _, m := range rep.Missing {
		if strings.Contains(m, "rejected at admission") {
			found = true
		}
	}
	if !found {
		t.Fatalf("rejection not named in Missing: %v", rep.Missing)
	}

	// More rejections sink the score further, down to a floor.
	worse := contentionGraph()
	setEvidence(worse, ref(0, 0), ref(1, 1), 6)
	setCoverage(worse, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
	for i := 0; i < 5; i++ {
		worse.Coverage.NoteRejected(1)
	}
	worseRep := Diagnose(DefaultConfig(), worse, tp, flowT(1))
	if worseRep.ConfidenceScore >= rep.ConfidenceScore {
		t.Fatalf("repeated rejections did not compound: %.2f vs %.2f",
			worseRep.ConfidenceScore, rep.ConfidenceScore)
	}
	if worseRep.ConfidenceScore <= 0 {
		t.Fatal("rejection penalty drove the score to zero")
	}
}

func TestConfidenceCappedByClampedOrSuspectValues(t *testing.T) {
	tp := testTopo(t)
	for _, tc := range []struct {
		name    string
		clamped int
		suspect int
	}{
		{"clamped", 3, 0},
		{"suspect", 0, 2},
	} {
		g := contentionGraph()
		setEvidence(g, ref(0, 0), ref(1, 1), 6)
		setCoverage(g, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
		g.Coverage.Clamped = tc.clamped
		g.Coverage.Suspect = tc.suspect
		rep := Diagnose(DefaultConfig(), g, tp, flowT(1))
		if rep.Confidence == ConfHigh {
			t.Fatalf("%s: corruption in accepted evidence left confidence high (%.2f)",
				tc.name, rep.ConfidenceScore)
		}
		found := false
		for _, m := range rep.Missing {
			if strings.Contains(m, "corruption") {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: corruption not named in Missing: %v", tc.name, rep.Missing)
		}
	}
}

// Package diagnosis implements Hawkeye's provenance analysis (§3.5.2,
// Algorithm 2): walk the port-level wait-for graph from the victim flow's
// paused hops, detect PFC spreading paths and loops, classify terminal
// ports as flow contention vs. host PFC injection, and match the anomaly
// signatures of Table 2.
package diagnosis

import (
	"fmt"
	"sort"
	"strings"

	"hawkeye/internal/packet"
	"hawkeye/internal/provenance"
	"hawkeye/internal/topo"
)

// AnomalyType enumerates the Table 2 anomaly cases.
type AnomalyType int

const (
	// TypeNone: nothing anomalous found in the provenance.
	TypeNone AnomalyType = iota
	// TypeNormalContention: no PFC spreading; plain queue contention.
	TypeNormalContention
	// TypePFCContention: PFC backpressure whose initial congestion is
	// flow contention (micro-burst incast and relatives).
	TypePFCContention
	// TypePFCStorm: cascading PFC caused by host PFC injection.
	TypePFCStorm
	// TypeInLoopDeadlock: deadlock whose initiator is inside the CBD loop.
	TypeInLoopDeadlock
	// TypeOutLoopDeadlockContention: deadlock triggered by flow
	// contention outside the loop.
	TypeOutLoopDeadlockContention
	// TypeOutLoopDeadlockInjection: deadlock triggered by host PFC
	// injection outside the loop.
	TypeOutLoopDeadlockInjection
)

func (t AnomalyType) String() string {
	switch t {
	case TypeNone:
		return "none"
	case TypeNormalContention:
		return "normal-flow-contention"
	case TypePFCContention:
		return "pfc-backpressure-contention"
	case TypePFCStorm:
		return "pfc-storm"
	case TypeInLoopDeadlock:
		return "in-loop-deadlock"
	case TypeOutLoopDeadlockContention:
		return "out-of-loop-deadlock-contention"
	case TypeOutLoopDeadlockInjection:
		return "out-of-loop-deadlock-injection"
	default:
		return fmt.Sprintf("AnomalyType(%d)", int(t))
	}
}

// anomalyTypes enumerates every defined type, for ParseAnomalyType.
var anomalyTypes = []AnomalyType{
	TypeNone, TypeNormalContention, TypePFCContention, TypePFCStorm,
	TypeInLoopDeadlock, TypeOutLoopDeadlockContention, TypeOutLoopDeadlockInjection,
}

// ParseAnomalyType inverts AnomalyType.String (wire filters carry the
// string form). The second result is false for unknown names.
func ParseAnomalyType(s string) (AnomalyType, bool) {
	for _, t := range anomalyTypes {
		if t.String() == s {
			return t, true
		}
	}
	return TypeNone, false
}

// IsDeadlock reports whether the type is one of the deadlock cases.
func (t AnomalyType) IsDeadlock() bool {
	return t == TypeInLoopDeadlock || t == TypeOutLoopDeadlockContention || t == TypeOutLoopDeadlockInjection
}

// CauseKind distinguishes Table 2 root-cause columns.
type CauseKind int

const (
	// CauseFlowContention: flows overfilling a queue.
	CauseFlowContention CauseKind = iota
	// CauseHostInjection: a host emitting PFC frames for no reason the
	// telemetry can name — the generic host-side verdict when no
	// host-agent counters are available to refine it.
	CauseHostInjection
	// CauseSlowReceiver: the host's RX buffer sits full because the
	// application drains it below line rate; the PFC is legitimate
	// backpressure from a host that cannot keep up.
	CauseSlowReceiver
	// CauseHostProcessingBound: the NIC's per-packet processing cost
	// degraded under QP fan-in (cache thrash); the buffer backs up even
	// though the drain path is nominally fast.
	CauseHostProcessingBound
	// CauseHostPauseStorm: the host emits PFC decoupled from its buffer
	// state — spurious pauses from a malfunctioning NIC.
	CauseHostPauseStorm
)

func (k CauseKind) String() string {
	switch k {
	case CauseHostInjection:
		return "host-pfc-injection"
	case CauseSlowReceiver:
		return "host-slow-receiver"
	case CauseHostProcessingBound:
		return "host-processing-bound"
	case CauseHostPauseStorm:
		return "host-pause-storm"
	default:
		return "flow-contention"
	}
}

// IsHostSide reports whether the kind blames the host behind the
// terminal port rather than network flow contention.
func (k CauseKind) IsHostSide() bool {
	return k != CauseFlowContention
}

// RootCause pins one initial congestion point.
type RootCause struct {
	Kind CauseKind
	// Port is the initial congestion point (terminal of the PFC walk).
	Port topo.PortRef
	// Flows are the contention contributors, descending by weight.
	Flows []packet.FiveTuple
	// BurstFlows marks which contributors are burst-classified.
	BurstFlows []packet.FiveTuple
	// InjectorHostFacing is true when Port faces the injecting host.
	InjectorHostFacing bool
	// Host is the implicated host behind Port. Only meaningful when
	// InjectorHostFacing is true.
	Host topo.NodeID
}

// Config tunes signature matching.
type Config struct {
	// MinContribution: a flow is a contention contributor only if its
	// net port-flow weight exceeds this (packets kept waiting on
	// average). Filters the symmetric near-zero noise of flows that
	// merely share a paused queue.
	MinContribution float64
	// ContributorFrac additionally requires a contributor to reach this
	// fraction of the top contributor's weight.
	ContributorFrac float64
	// HostProcLatencyNS: a host leaf whose per-packet processing-latency
	// proxy is at or above this (and whose fan-in reaches HostFanIn)
	// is processing-bound rather than merely slow to drain.
	HostProcLatencyNS uint64
	// HostFanIn is the active-QP count above which degraded processing
	// latency is attributed to cache thrash under fan-in.
	HostFanIn uint32
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		MinContribution:   2.0,
		ContributorFrac:   0.1,
		HostProcLatencyNS: 600,
		HostFanIn:         4,
	}
}

// Confidence grades how well the telemetry behind a diagnosis supports
// its conclusion. Under fault injection (internal/chaos) the evidence
// thins out; the grade must thin out with it — a wrong root cause
// reported with high confidence is worse than no diagnosis at all.
type Confidence int

const (
	// ConfLow: major evidence gaps; treat the conclusion as a hint.
	ConfLow Confidence = iota
	// ConfMedium: the conclusion is supported but parts of the causality
	// chain rest on sparse evidence.
	ConfMedium
	// ConfHigh: the full causality chain is backed by telemetry.
	ConfHigh
)

func (c Confidence) String() string {
	switch c {
	case ConfHigh:
		return "high"
	case ConfMedium:
		return "medium"
	default:
		return "low"
	}
}

// Report is the diagnosis outcome for one victim.
type Report struct {
	Victim packet.FiveTuple
	Type   AnomalyType
	Causes []RootCause
	// PFCPaths are the port chains walked from the victim to each
	// terminal (the "how" of the anomaly).
	PFCPaths [][]topo.PortRef
	// Loop holds the deadlock cycle when one was found.
	Loop []topo.PortRef
	// Spreaders are flows paused at two or more ports: the carriers of
	// the PFC spreading (e.g. F2 in Fig. 12a).
	Spreaders []packet.FiveTuple
	// VictimPausedAt lists the ports where the victim itself was paused.
	VictimPausedAt []topo.PortRef
	// Confidence grades the evidence behind the conclusion;
	// ConfidenceScore is the underlying [0,1] value (levels: >=0.8 high,
	// >=0.45 medium).
	Confidence      Confidence
	ConfidenceScore float64
	// Missing lists the evidence gaps that degraded the confidence, in
	// the order they were assessed.
	Missing []string
}

// PrimaryCause returns the first root cause (the analysis orders causes
// by walk origin weight), or a zero RootCause if none.
func (r *Report) PrimaryCause() RootCause {
	if len(r.Causes) == 0 {
		return RootCause{}
	}
	return r.Causes[0]
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnosis for %v: %v\n", r.Victim, r.Type)
	for _, c := range r.Causes {
		fmt.Fprintf(&b, "  cause: %v at %v", c.Kind, c.Port)
		if len(c.Flows) > 0 {
			fmt.Fprintf(&b, " flows=%v", c.Flows)
		}
		b.WriteString("\n")
	}
	if len(r.Loop) > 0 {
		fmt.Fprintf(&b, "  loop: %v\n", r.Loop)
	}
	for _, p := range r.PFCPaths {
		fmt.Fprintf(&b, "  pfc-path: %v\n", p)
	}
	if len(r.Spreaders) > 0 {
		fmt.Fprintf(&b, "  spreading flows: %v\n", r.Spreaders)
	}
	fmt.Fprintf(&b, "  confidence: %v (%.2f)\n", r.Confidence, r.ConfidenceScore)
	for _, m := range r.Missing {
		fmt.Fprintf(&b, "  missing: %s\n", m)
	}
	return b.String()
}

// analyzer carries the walk state.
type analyzer struct {
	g    *provenance.Graph
	t    *topo.Topology
	cfg  Config
	rep  *Report
	seen map[topo.PortRef]bool
}

// Diagnose runs Algorithm 2 for one victim flow.
func Diagnose(cfg Config, g *provenance.Graph, t *topo.Topology, victim packet.FiveTuple) *Report {
	a := &analyzer{
		g:    g,
		t:    t,
		cfg:  cfg,
		rep:  &Report{Victim: victim},
		seen: make(map[topo.PortRef]bool),
	}
	a.rep.VictimPausedAt = g.VictimPorts(victim)

	// Walk PFC causality from every hop where the victim is paused.
	roots := a.rep.VictimPausedAt
	if len(roots) == 0 {
		// Deadlock freezes per-packet telemetry: the victim may have no
		// paused-count evidence at all. Fall back to the live pause
		// registers of the collected (hence causally relevant) switches.
		roots = g.PausedPorts()
	}
	for _, p := range roots {
		a.checkPortNode(p, nil)
	}

	a.rep.Spreaders = a.spreaders()
	a.classify()
	a.assess()
	return a.rep
}

// assess grades the evidence behind the classification. Each gap applies
// a multiplicative penalty so independent degradations compound; the
// notes name what is missing so an operator knows which telemetry to go
// fetch before trusting (or re-running) the diagnosis.
func (a *analyzer) assess() {
	r := a.rep
	if len(a.g.Ports) == 0 {
		// Nothing collected at all: whatever classify concluded (TypeNone)
		// is an absence of evidence, not evidence of absence.
		r.ConfidenceScore = 0.05
		r.Confidence = ConfLow
		r.Missing = append(r.Missing, "no telemetry collected; diagnosis is a default, not a conclusion")
		return
	}
	score := 1.0
	if cov := a.g.Coverage; cov != nil {
		if cov.Expected > 0 {
			score *= 0.35 + 0.65*cov.Frac()
			if n := len(cov.MissingSwitches); n > 0 {
				r.Missing = append(r.Missing, fmt.Sprintf(
					"no report from %d of %d victim-path switches", n, cov.Expected))
			}
		}
		if cov.Collected > 0 {
			avg := cov.AvgEpochs()
			frac := avg / 3
			if frac > 1 {
				frac = 1
			}
			score *= 0.7 + 0.3*frac
			if avg < 2 {
				r.Missing = append(r.Missing, fmt.Sprintf(
					"telemetry epochs sparse: %.1f per report on average", avg))
			}
		}
		// Rejected and clamped telemetry is worse than missing telemetry:
		// something in the fabric is emitting garbage, and whatever shares
		// a corruption source with it may be subtly wrong without tripping
		// a check. Each rejected report compounds (capped at three), and
		// any detected corruption in accepted evidence caps the grade below
		// ConfHigh on its own.
		if cov.Rejected > 0 {
			n := cov.Rejected
			if n > 3 {
				n = 3
			}
			for i := 0; i < n; i++ {
				score *= 0.6
			}
			r.Missing = append(r.Missing, fmt.Sprintf(
				"%d telemetry reports rejected at admission; their switches were heard from and disbelieved", cov.Rejected))
		}
		if cov.Clamped > 0 || cov.Suspect > 0 {
			score *= 0.7
			r.Missing = append(r.Missing, fmt.Sprintf(
				"accepted telemetry carried corruption: %d values clamped, %d records outside the topology",
				cov.Clamped, cov.Suspect))
		}
	}
	if len(r.VictimPausedAt) == 0 {
		if len(a.g.Flows[r.Victim]) == 0 {
			score *= 0.6
			r.Missing = append(r.Missing, "no flow telemetry for the victim anywhere")
		} else {
			score *= 0.75
			r.Missing = append(r.Missing, "victim never recorded paused; walk rooted at live pause registers")
		}
	}
	// Host-injection conclusions are negative evidence: the walk found NO
	// contention behind a paused port. Absence only means something when
	// the telemetry that would have shown contention actually arrived, and
	// a switch-to-switch port blaming its peer for injecting PFC is
	// physically suspect outside a deadlock — switches relay pressure,
	// hosts originate it. Both patterns are the signature of contention
	// records lost to telemetry faults, so they cap the grade.
	switchFacing, incomplete := false, false
	for _, c := range r.Causes {
		if !c.Kind.IsHostSide() {
			continue
		}
		if !c.InjectorHostFacing && !r.Type.IsDeadlock() {
			switchFacing = true
		}
		if cov := a.g.Coverage; cov != nil {
			if n := cov.SwitchEpochs(c.Port.Node); n < cov.MaxSwitchEpochs() {
				incomplete = true
			}
		}
	}
	if switchFacing {
		score *= 0.55
		r.Missing = append(r.Missing,
			"PFC attributed to injection at a switch-to-switch port; upstream contention telemetry may be lost")
	}
	if incomplete {
		score *= 0.7
		r.Missing = append(r.Missing,
			"an injection conclusion rests on an epoch-incomplete report; the missing epochs may hold the real contention")
	}
	// Host-agent coverage. When the analyzer queried host agents
	// (HostsExpected > 0), a root cause anchored at a host-facing port —
	// whichever side it blames — is only fully trustworthy if the host
	// behind that port delivered its counter snapshot. Without it a
	// host-caused anomaly and a network-caused one look identical from
	// the switch side, so the grade must stay below high: this is the
	// monotone-penalty contract of the degraded mode. Rejected host
	// snapshots are graded like rejected switch telemetry: heard from
	// and disbelieved.
	if cov := a.g.Coverage; cov != nil && cov.HostsExpected > 0 {
		hostGap := false
		for _, c := range r.Causes {
			if !a.t.IsHostFacing(c.Port.Node, c.Port.Port) {
				continue
			}
			peer, _ := a.t.PeerOf(c.Port.Node, c.Port.Port)
			if a.g.Hosts[peer] == nil {
				hostGap = true
			}
		}
		if hostGap {
			score *= 0.55
			r.Missing = append(r.Missing,
				"no host-agent snapshot from the host behind the initial congestion point; host-vs-network attribution is uncorroborated")
		}
		if cov.HostsRejected > 0 {
			score *= 0.7
			r.Missing = append(r.Missing, fmt.Sprintf(
				"%d host-agent snapshots rejected at admission", cov.HostsRejected))
		}
	}
	// The causality chain is only as strong as its weakest wait-for edge.
	minEv := -1
	for _, path := range r.PFCPaths {
		for i := 0; i+1 < len(path); i++ {
			ev := a.g.EdgeEvidence(path[i], path[i+1])
			if minEv < 0 || ev < minEv {
				minEv = ev
			}
		}
	}
	switch {
	case minEv >= 0 && minEv <= 1:
		score *= 0.75
		r.Missing = append(r.Missing, "a PFC-path edge rests on a single causality-meter sample")
	case minEv == 2:
		score *= 0.9
	}
	r.ConfidenceScore = score
	switch {
	case score >= 0.8:
		r.Confidence = ConfHigh
	case score >= 0.45:
		r.Confidence = ConfMedium
	default:
		r.Confidence = ConfLow
	}
}

// checkPortNode is the DFS of Algorithm 2 (CheckPortNode): follow
// port-level wait-for edges, record loops, and analyze terminals.
func (a *analyzer) checkPortNode(p topo.PortRef, stack []topo.PortRef) {
	for i, q := range stack {
		if q == p {
			// Cycle: record the loop once. A single-port self-edge is
			// measurement noise, not a CBD — a circular wait needs at
			// least two buffers.
			if len(a.rep.Loop) == 0 && len(stack)-i >= 2 {
				a.rep.Loop = append([]topo.PortRef(nil), stack[i:]...)
			}
			return
		}
	}
	stack = append(stack, p)
	if a.seen[p] {
		return
	}
	a.seen[p] = true

	next := a.g.PortNeighbors(p)
	if len(next) == 0 {
		// Initial node of the PFC spreading: analyze local contention.
		a.rep.PFCPaths = append(a.rep.PFCPaths, append([]topo.PortRef(nil), stack...))
		a.rep.Causes = append(a.rep.Causes, a.analyzeFlowContention(p))
		return
	}
	for _, q := range next {
		a.checkPortNode(q, stack)
	}
}

// analyzeFlowContention implements AnalyzeFlowContention: positive
// port-flow edges mean contention; none means the PFC was injected by
// the port's peer device.
func (a *analyzer) analyzeFlowContention(p topo.PortRef) RootCause {
	if a.hostPauser(p) {
		// The port faces a host whose own counters show it transmitting
		// PFC. Any positive flow weights here are artifacts of the
		// inter-pause drain — the flows behind the port are victims of
		// the pausing endpoint, not contributors — so the terminal is an
		// injection, refined by the host signature.
		return a.analyzeInjection(p)
	}
	flows := a.contributors(p)
	if len(flows) == 0 {
		return a.analyzeInjection(p)
	}
	rc := RootCause{Kind: CauseFlowContention, Port: p, Flows: flows}
	for _, f := range flows {
		if a.g.IsBurstFlow(f, p) {
			rc.BurstFlows = append(rc.BurstFlows, f)
		}
	}
	return rc
}

// analyzeInjection classifies an empty-contributor terminal. Without
// host-agent counters the verdict stays the generic host-PFC-injection
// of Algorithm 2. When the host behind the port delivered a counter
// snapshot, its signature refines the pathology (extended Table 2):
// pauses with an empty RX buffer are spurious (pause storm); a full
// buffer with degraded per-packet latency under fan-in is a
// processing-bound NIC; a full buffer otherwise is a slow receiver.
func (a *analyzer) analyzeInjection(p topo.PortRef) RootCause {
	rc := RootCause{
		Kind:               CauseHostInjection,
		Port:               p,
		InjectorHostFacing: a.t.IsHostFacing(p.Node, p.Port),
	}
	if !rc.InjectorHostFacing {
		return rc
	}
	rc.Host, _ = a.t.PeerOf(p.Node, p.Port)
	hi := a.g.Hosts[rc.Host]
	if hi == nil || hi.Report.PauseTx == 0 {
		// No host evidence, or the host denies pausing at all: keep the
		// generic verdict and let assess grade the gap.
		return rc
	}
	rep := hi.Report
	switch {
	case rep.RxBufferCap == 0 || rep.RxBufferBytes*8 < rep.RxBufferCap:
		// Pausing with a (near-)empty buffer: the PFC is decoupled from
		// buffer state.
		rc.Kind = CauseHostPauseStorm
	case rep.RxBufferBytes*4 >= rep.RxBufferCap &&
		rep.ProcLatencyNS >= a.cfg.HostProcLatencyNS &&
		rep.ActiveQPs >= a.cfg.HostFanIn:
		rc.Kind = CauseHostProcessingBound
	case rep.RxBufferBytes*4 >= rep.RxBufferCap:
		rc.Kind = CauseSlowReceiver
	}
	return rc
}

// contributors filters the port-flow edges by the significance rules.
func (a *analyzer) contributors(p topo.PortRef) []packet.FiveTuple {
	all := a.g.Contributors(p)
	var out []packet.FiveTuple
	var top float64
	for i, f := range all {
		w := a.g.PortFlow[p][f]
		if i == 0 {
			top = w
		}
		if w >= a.cfg.MinContribution && w >= a.cfg.ContributorFrac*top {
			out = append(out, f)
		}
	}
	return out
}

// spreaders finds flows paused at two or more ports.
func (a *analyzer) spreaders() []packet.FiveTuple {
	var out []packet.FiveTuple
	for f, ports := range a.g.FlowPort {
		if f == a.rep.Victim {
			continue
		}
		n := 0
		for _, w := range ports {
			if w > 0 {
				n++
			}
		}
		if n >= 2 {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// classify matches the Table 2 signatures against the walk results.
func (a *analyzer) classify() {
	r := a.rep
	switch {
	case len(r.Loop) > 0:
		a.classifyDeadlock()
	case len(r.PFCPaths) > 0 && a.pathBeyondVictim():
		// PFC spreading exists: contention or storm by terminal analysis.
		// A host pathology corroborated by the host's own counters outranks
		// a contention terminal: the counters are direct evidence of an
		// endpoint defect, while contention weights are inference — and the
		// differential flow motion a pausing sick host induces upstream can
		// fabricate small contention pairs at secondary terminals.
		if cause, ok := a.firstHostPathology(); ok {
			r.Type = TypePFCStorm
			a.promoteCause(cause)
		} else if cause, ok := a.firstCause(CauseFlowContention); ok {
			r.Type = TypePFCContention
			a.promoteCause(cause)
		} else {
			r.Type = TypePFCStorm
		}
	case len(r.VictimPausedAt) > 0:
		// Victim paused but no spreading beyond its own hop: the paused
		// port itself is the initial congestion point.
		p := r.VictimPausedAt[0]
		if len(r.Causes) == 0 {
			r.Causes = append(r.Causes, a.analyzeFlowContention(p))
		}
		if r.Causes[0].Kind == CauseFlowContention {
			r.Type = TypePFCContention
		} else {
			r.Type = TypePFCStorm
		}
	default:
		a.classifyNoPFC()
	}
}

// pathBeyondVictim reports whether any walk left the victim's own hop.
func (a *analyzer) pathBeyondVictim() bool {
	for _, path := range a.rep.PFCPaths {
		if len(path) > 1 {
			return true
		}
	}
	return len(a.rep.PFCPaths) > 0
}

// classifyDeadlock splits in-loop vs out-of-loop by the loop nodes'
// out-degrees (Table 2) and analyzes the initiator.
func (a *analyzer) classifyDeadlock() {
	r := a.rep
	inLoop := make(map[topo.PortRef]bool, len(r.Loop))
	for _, p := range r.Loop {
		inLoop[p] = true
	}
	// A loop node with edges leaving the loop marks an out-of-loop
	// initiator reachable along that branch.
	outOfLoop := false
	for _, p := range r.Loop {
		for _, q := range a.g.PortNeighbors(p) {
			if !inLoop[q] {
				outOfLoop = true
			}
		}
	}
	if outOfLoop {
		// The DFS already followed those branches; its terminals are in
		// r.Causes. Prefer a terminal outside the loop.
		for _, c := range r.Causes {
			if !inLoop[c.Port] {
				a.promoteCause(c)
				if c.Kind.IsHostSide() {
					r.Type = TypeOutLoopDeadlockInjection
				} else {
					r.Type = TypeOutLoopDeadlockContention
				}
				return
			}
		}
		// Fallback: branch existed but was not collected; treat as
		// injection from outside the collected region.
		r.Type = TypeOutLoopDeadlockInjection
		return
	}
	// Initiator inside the loop: the loop port with the strongest flow
	// contention is the initial congestion point.
	r.Type = TypeInLoopDeadlock
	best := r.Loop[0]
	bestW := 0.0
	for _, p := range r.Loop {
		if w := a.g.MaxPortFlowWeight(p); w > bestW {
			bestW, best = w, p
		}
	}
	// Even when the initiating contention has aged out of the flow
	// telemetry, the cause stays anchored inside the loop rather than at
	// some unrelated walk terminal.
	a.promoteCause(a.analyzeFlowContention(best))
}

// classifyNoPFC handles the degenerate traditional case: no port-level
// edges at all; contention on the victim path (Table 2 last row).
func (a *analyzer) classifyNoPFC() {
	r := a.rep
	var best topo.PortRef
	bestW := 0.0
	for _, p := range a.g.FlowPathPorts(r.Victim) {
		if w := a.g.MaxPortFlowWeight(p); w > bestW {
			bestW, best = w, p
		}
	}
	if bestW < a.cfg.MinContribution {
		r.Type = TypeNone
		return
	}
	cause := a.analyzeFlowContention(best)
	if cause.Kind != CauseFlowContention {
		r.Type = TypeNone
		return
	}
	r.Type = TypeNormalContention
	r.Causes = []RootCause{cause}
}

// hostPauser reports whether the port faces a host whose counter
// snapshot shows it asserting PFC toward the fabric. An incast target
// never pauses (the switch buffer does), so this cleanly separates a
// sick endpoint from ordinary receiver-side contention.
func (a *analyzer) hostPauser(p topo.PortRef) bool {
	// Hand-built graphs in tests may reference ports the topology never
	// wired; an unresolvable port cannot face a host.
	if int(p.Node) < 0 || int(p.Node) >= len(a.t.Nodes) {
		return false
	}
	if n := a.t.Node(p.Node); n == nil || p.Port < 0 || p.Port >= len(n.Ports) {
		return false
	}
	if !a.t.IsHostFacing(p.Node, p.Port) {
		return false
	}
	peer, _ := a.t.PeerOf(p.Node, p.Port)
	h := a.g.Hosts[peer]
	return h != nil && h.Report.PauseTx > 0
}

// firstHostPathology returns the first cause whose kind was refined past
// the generic injection verdict by host-agent counters — a pathology the
// host itself corroborates, as opposed to one inferred from the fabric.
func (a *analyzer) firstHostPathology() (RootCause, bool) {
	for _, c := range a.rep.Causes {
		if c.Kind.IsHostSide() && c.Kind != CauseHostInjection {
			return c, true
		}
	}
	return RootCause{}, false
}

// firstCause returns the first recorded cause of the given kind.
func (a *analyzer) firstCause(kind CauseKind) (RootCause, bool) {
	for _, c := range a.rep.Causes {
		if c.Kind == kind {
			return c, true
		}
	}
	return RootCause{}, false
}

// promoteCause moves (or inserts) the cause to the front of the list.
func (a *analyzer) promoteCause(c RootCause) {
	out := []RootCause{c}
	for _, o := range a.rep.Causes {
		if o.Port != c.Port {
			out = append(out, o)
		}
	}
	a.rep.Causes = out
}

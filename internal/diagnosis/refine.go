package diagnosis

import (
	"hawkeye/internal/topo"
)

// CauseDetail refines a flow-contention root cause (§3.5.2): once the
// contributing flows are identified, the analyzer distinguishes WHY they
// overloaded the port — a synchronized micro-burst, ECMP hash imbalance
// (the contributors had equal-cost alternatives and polarized anyway),
// or plain long-lived overload of a port with no alternatives (e.g. a
// host-facing incast of elephants).
type CauseDetail int

const (
	// DetailUnknown: not a flow-contention cause, or no contributors.
	DetailUnknown CauseDetail = iota
	// DetailMicroBurst: the contributors are burst-classified (short,
	// line-rate, few epochs).
	DetailMicroBurst
	// DetailECMPImbalance: the contributors converged on this port while
	// equal-cost siblings existed — hash polarization, not demand.
	DetailECMPImbalance
	// DetailOverload: long-lived contributors saturating a port that is
	// the only path (destination-bound incast, elephant overload).
	DetailOverload
)

func (d CauseDetail) String() string {
	switch d {
	case DetailMicroBurst:
		return "micro-burst"
	case DetailECMPImbalance:
		return "ecmp-imbalance"
	case DetailOverload:
		return "overload"
	}
	return "unknown"
}

// Refine classifies a flow-contention cause. Routing is consulted to
// decide whether the contributors had equal-cost alternatives at the
// congested switch; burst classification comes from the provenance
// graph (already recorded in the cause).
func Refine(cause RootCause, r *topo.Routing, t *topo.Topology) CauseDetail {
	if cause.Kind != CauseFlowContention || len(cause.Flows) == 0 {
		return DetailUnknown
	}
	// A host-facing congested port is destination-bound — no alternative
	// path could have helped; the only question is the contributors'
	// shape (short burst vs sustained overload).
	if t.IsHostFacing(cause.Port.Node, cause.Port.Port) {
		if 2*len(cause.BurstFlows) >= len(cause.Flows) {
			return DetailMicroBurst
		}
		return DetailOverload
	}
	// Fabric port: if the contributors had equal-cost alternatives and
	// converged here anyway, the actionable cause is the hashing, not the
	// traffic — checked BEFORE the burst shape because a freshly started
	// elephant is indistinguishable from a burst at diagnosis time, while
	// the alternative-path evidence is unambiguous either way.
	withAlt := 0
	for _, f := range cause.Flows {
		dst, ok := t.HostByIP(f.DstIP)
		if !ok {
			continue
		}
		hops := r.NextHops(cause.Port.Node, dst)
		if len(hops) < 2 {
			continue
		}
		for _, p := range hops {
			if p == cause.Port.Port {
				withAlt++
				break
			}
		}
	}
	if 2*withAlt >= len(cause.Flows) {
		return DetailECMPImbalance
	}
	if 2*len(cause.BurstFlows) >= len(cause.Flows) {
		return DetailMicroBurst
	}
	return DetailOverload
}

package diagnosis

import (
	"strings"
	"testing"

	"hawkeye/internal/provenance"
	"hawkeye/internal/topo"
)

// contentionGraph assembles the Fig. 12-style PFC contention case used
// across the confidence tests: victim paused at sw0.P0, edge to terminal
// sw1.P1 where two flows contend.
func contentionGraph() *provenance.Graph {
	g := emptyGraph()
	victim, b1, b2 := flowT(1), flowT(2), flowT(3)
	addPort(g, ref(0, 0), 5)
	addPort(g, ref(1, 1), 0)
	addPortEdge(g, ref(0, 0), ref(1, 1), 100)
	addFlowPort(g, victim, ref(0, 0), 5)
	addPortFlow(g, ref(1, 1), b1, 40)
	addPortFlow(g, ref(1, 1), b2, 38)
	addPortFlow(g, ref(1, 1), victim, -78)
	return g
}

func setEvidence(g *provenance.Graph, a, b topo.PortRef, ev int) {
	if g.PortEdgeEvidence[a] == nil {
		g.PortEdgeEvidence[a] = make(map[topo.PortRef]int)
	}
	g.PortEdgeEvidence[a][b] = ev
}

func setCoverage(g *provenance.Graph, collected []topo.NodeID, epochsEach int, expected []topo.NodeID) {
	for _, id := range collected {
		g.Coverage.Switches[id] = true
		g.Coverage.Collected++
		g.Coverage.EpochsCollected += epochsEach
	}
	g.Coverage.SetExpected(expected)
}

func TestConfidenceHighWithFullEvidence(t *testing.T) {
	tp := testTopo(t)
	g := contentionGraph()
	setEvidence(g, ref(0, 0), ref(1, 1), 6)
	setCoverage(g, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})

	rep := Diagnose(DefaultConfig(), g, tp, flowT(1))
	if rep.Confidence != ConfHigh {
		t.Fatalf("confidence = %v (%.2f), want high\n%v", rep.Confidence, rep.ConfidenceScore, rep)
	}
	if len(rep.Missing) != 0 {
		t.Fatalf("full evidence reported gaps: %v", rep.Missing)
	}
	if !strings.Contains(rep.String(), "confidence: high") {
		t.Fatalf("String() lacks confidence line:\n%v", rep)
	}
}

func TestConfidenceDegradesWithMissingSwitches(t *testing.T) {
	tp := testTopo(t)
	full := contentionGraph()
	setEvidence(full, ref(0, 0), ref(1, 1), 6)
	setCoverage(full, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
	fullRep := Diagnose(DefaultConfig(), full, tp, flowT(1))

	holed := contentionGraph()
	setEvidence(holed, ref(0, 0), ref(1, 1), 6)
	// Same collected set, but the analyzer wanted two more switches.
	setCoverage(holed, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1, 2, 3})
	holedRep := Diagnose(DefaultConfig(), holed, tp, flowT(1))

	if holedRep.ConfidenceScore >= fullRep.ConfidenceScore {
		t.Fatalf("missing switches did not degrade score: %.2f vs %.2f",
			holedRep.ConfidenceScore, fullRep.ConfidenceScore)
	}
	found := false
	for _, m := range holedRep.Missing {
		if strings.Contains(m, "victim-path switches") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-switch gap not reported: %v", holedRep.Missing)
	}
	// The conclusion itself is unchanged — only the trust in it moves.
	if holedRep.Type != fullRep.Type {
		t.Fatalf("coverage changed the classification: %v vs %v", holedRep.Type, fullRep.Type)
	}
}

func TestConfidenceDegradesWithWeakEdgeEvidence(t *testing.T) {
	tp := testTopo(t)
	strong := contentionGraph()
	setEvidence(strong, ref(0, 0), ref(1, 1), 6)
	setCoverage(strong, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
	strongRep := Diagnose(DefaultConfig(), strong, tp, flowT(1))

	weak := contentionGraph()
	setEvidence(weak, ref(0, 0), ref(1, 1), 1)
	setCoverage(weak, []topo.NodeID{0, 1}, 4, []topo.NodeID{0, 1})
	weakRep := Diagnose(DefaultConfig(), weak, tp, flowT(1))

	if weakRep.ConfidenceScore >= strongRep.ConfidenceScore {
		t.Fatalf("single-sample edge did not degrade score: %.2f vs %.2f",
			weakRep.ConfidenceScore, strongRep.ConfidenceScore)
	}
}

func TestConfidenceSparseEpochsReported(t *testing.T) {
	tp := testTopo(t)
	g := contentionGraph()
	setEvidence(g, ref(0, 0), ref(1, 1), 6)
	setCoverage(g, []topo.NodeID{0, 1}, 1, []topo.NodeID{0, 1})
	rep := Diagnose(DefaultConfig(), g, tp, flowT(1))
	found := false
	for _, m := range rep.Missing {
		if strings.Contains(m, "epochs sparse") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sparse epochs not reported: %v", rep.Missing)
	}
}

func TestConfidenceEmptyGraphIsLow(t *testing.T) {
	tp := testTopo(t)
	rep := Diagnose(DefaultConfig(), emptyGraph(), tp, flowT(1))
	if rep.Confidence != ConfLow || rep.ConfidenceScore > 0.1 {
		t.Fatalf("empty graph: confidence = %v (%.2f), want low", rep.Confidence, rep.ConfidenceScore)
	}
	if len(rep.Missing) == 0 {
		t.Fatal("empty graph reported no missing evidence")
	}
}

func TestConfidenceVictimWithoutPauseEvidence(t *testing.T) {
	tp := testTopo(t)
	// Victim has flow telemetry but never a pause record: walk falls back
	// to live registers and confidence takes the corresponding penalty.
	g := emptyGraph()
	victim := flowT(1)
	addPort(g, ref(0, 0), 3)
	if g.Flows[victim] == nil {
		g.Flows[victim] = make(map[topo.PortRef]*provenance.FlowInfo)
	}
	g.Flows[victim][ref(0, 0)] = &provenance.FlowInfo{Tuple: victim, Port: ref(0, 0), PktCount: 10}
	setCoverage(g, []topo.NodeID{0}, 4, []topo.NodeID{0})
	rep := Diagnose(DefaultConfig(), g, tp, victim)
	found := false
	for _, m := range rep.Missing {
		if strings.Contains(m, "victim never recorded paused") {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim pause gap not reported: %v", rep.Missing)
	}
}

package diagnosis

import (
	"strings"
	"testing"

	"hawkeye/internal/packet"
	"hawkeye/internal/provenance"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// graph-building helpers: hand-assembled provenance graphs shaped like
// the paper's Fig. 12 cases, decoupled from telemetry collection.

func flowT(n uint32) packet.FiveTuple {
	return packet.FiveTuple{SrcIP: n, DstIP: 0xFF, SrcPort: 9, DstPort: 4791, Proto: 17}
}

func ref(node, port int) topo.PortRef {
	return topo.PortRef{Node: topo.NodeID(node), Port: port}
}

// testTopo builds hosts h0..h3 hanging off a 4-switch chain so host-facing
// checks work: switches are nodes 0..3, hosts 4..7 (host i on switch i).
func testTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp := topo.New(100e9, sim.Microsecond)
	var sws []topo.NodeID
	for i := 0; i < 4; i++ {
		sws = append(sws, tp.AddSwitch("sw"))
	}
	for i := 0; i+1 < 4; i++ {
		tp.Connect(sws[i], sws[i+1]) // ports 0/?? deterministic below
	}
	for i := 0; i < 4; i++ {
		h := tp.AddHost("h")
		tp.Connect(h, sws[i])
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	return tp
}

func emptyGraph() *provenance.Graph {
	return provenance.NewGraph(provenance.DefaultConfig(100e9, int64(sim.Millisecond)))
}

func addPort(g *provenance.Graph, p topo.PortRef, paused uint64) {
	g.Ports[p] = &provenance.PortInfo{Ref: p, PktCount: 10, PausedNum: paused, QdepthSum: 100000, Bytes: 10000}
}

func addPortEdge(g *provenance.Graph, a, b topo.PortRef, w float64) {
	if g.PortEdges[a] == nil {
		g.PortEdges[a] = make(map[topo.PortRef]float64)
	}
	g.PortEdges[a][b] = w
}

func addFlowPort(g *provenance.Graph, f packet.FiveTuple, p topo.PortRef, w float64) {
	if g.FlowPort[f] == nil {
		g.FlowPort[f] = make(map[topo.PortRef]float64)
	}
	g.FlowPort[f][p] = w
	if g.Flows[f] == nil {
		g.Flows[f] = make(map[topo.PortRef]*provenance.FlowInfo)
	}
	g.Flows[f][p] = &provenance.FlowInfo{Tuple: f, Port: p, PktCount: 10}
}

func addPortFlow(g *provenance.Graph, p topo.PortRef, f packet.FiveTuple, w float64) {
	if g.PortFlow[p] == nil {
		g.PortFlow[p] = make(map[packet.FiveTuple]float64)
	}
	g.PortFlow[p][f] = w
	if g.Flows[f] == nil {
		g.Flows[f] = make(map[topo.PortRef]*provenance.FlowInfo)
	}
	if g.Flows[f][p] == nil {
		g.Flows[f][p] = &provenance.FlowInfo{Tuple: f, Port: p, PktCount: 10}
	}
}

func TestSignaturePFCContention(t *testing.T) {
	// victim paused at sw0.P0 -> edge to sw1.P1 (terminal) where bursts
	// have positive weights.
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	b1, b2 := flowT(2), flowT(3)
	addPort(g, ref(0, 0), 5)
	addPort(g, ref(1, 1), 0)
	addPortEdge(g, ref(0, 0), ref(1, 1), 100)
	addFlowPort(g, victim, ref(0, 0), 5)
	addPortFlow(g, ref(1, 1), b1, 40)
	addPortFlow(g, ref(1, 1), b2, 38)
	addPortFlow(g, ref(1, 1), victim, -78)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypePFCContention {
		t.Fatalf("type = %v\n%v", rep.Type, rep)
	}
	c := rep.PrimaryCause()
	if c.Kind != CauseFlowContention || c.Port != ref(1, 1) {
		t.Fatalf("cause = %+v", c)
	}
	if len(c.Flows) != 2 {
		t.Fatalf("flows = %v", c.Flows)
	}
	if len(rep.PFCPaths) == 0 || len(rep.PFCPaths[0]) != 2 {
		t.Fatalf("paths = %v", rep.PFCPaths)
	}
}

func TestSignaturePFCStorm(t *testing.T) {
	// Terminal port is host-facing (sw1's host port) with no positive
	// port-flow weight.
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	// Host-facing port on switch 1: find it.
	hostPort := -1
	for pi := range tp.Node(1).Ports {
		if tp.IsHostFacing(1, pi) {
			hostPort = pi
		}
	}
	addPort(g, ref(0, 0), 5)
	addPort(g, ref(1, hostPort), 3)
	addPortEdge(g, ref(0, 0), ref(1, hostPort), 50)
	addFlowPort(g, victim, ref(0, 0), 5)
	addPortFlow(g, ref(1, hostPort), victim, -3)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypePFCStorm {
		t.Fatalf("type = %v\n%v", rep.Type, rep)
	}
	c := rep.PrimaryCause()
	if c.Kind != CauseHostInjection || !c.InjectorHostFacing {
		t.Fatalf("cause = %+v", c)
	}
}

// buildLoop adds a 4-port cycle over switches 0..3 port 0.
func buildLoop(g *provenance.Graph) []topo.PortRef {
	var loop []topo.PortRef
	for i := 0; i < 4; i++ {
		loop = append(loop, ref(i, 0))
	}
	for i := 0; i < 4; i++ {
		addPort(g, loop[i], 5)
		addPortEdge(g, loop[i], loop[(i+1)%4], 100)
	}
	return loop
}

func TestSignatureInLoopDeadlock(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	culprit := flowT(2)
	loop := buildLoop(g)
	addFlowPort(g, victim, loop[0], 5)
	addPortFlow(g, loop[2], culprit, 30)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypeInLoopDeadlock {
		t.Fatalf("type = %v\n%v", rep.Type, rep)
	}
	if len(rep.Loop) != 4 {
		t.Fatalf("loop = %v", rep.Loop)
	}
	c := rep.PrimaryCause()
	if c.Kind != CauseFlowContention || c.Port != loop[2] {
		t.Fatalf("cause = %+v", c)
	}
	if len(c.Flows) != 1 || c.Flows[0] != culprit {
		t.Fatalf("culprits = %v", c.Flows)
	}
}

func TestSignatureOutOfLoopDeadlockInjection(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	loop := buildLoop(g)
	hostPort := -1
	for pi := range tp.Node(1).Ports {
		if tp.IsHostFacing(1, pi) {
			hostPort = pi
		}
	}
	branch := ref(1, hostPort)
	addPort(g, branch, 2)
	addPortEdge(g, loop[0], branch, 40) // loop[0] is on switch 0; peer... edge into sw1's host port
	addFlowPort(g, victim, loop[0], 5)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypeOutLoopDeadlockInjection {
		t.Fatalf("type = %v\n%v", rep.Type, rep)
	}
	c := rep.PrimaryCause()
	if c.Kind != CauseHostInjection || c.Port != branch {
		t.Fatalf("cause = %+v", c)
	}
}

func TestSignatureOutOfLoopDeadlockContention(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	culprit := flowT(7)
	loop := buildLoop(g)
	branch := ref(1, 3)
	addPort(g, branch, 2)
	addPortEdge(g, loop[0], branch, 40)
	addFlowPort(g, victim, loop[0], 5)
	addPortFlow(g, branch, culprit, 25)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypeOutLoopDeadlockContention {
		t.Fatalf("type = %v\n%v", rep.Type, rep)
	}
	c := rep.PrimaryCause()
	if c.Kind != CauseFlowContention || c.Port != branch || len(c.Flows) != 1 {
		t.Fatalf("cause = %+v", c)
	}
}

func TestSignatureNormalContention(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	b1 := flowT(2)
	// No port-level edges, no pausing; victim path port with positive
	// contributor.
	addPort(g, ref(0, 0), 0)
	addPortFlow(g, ref(0, 0), b1, 20)
	addPortFlow(g, ref(0, 0), victim, -20)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypeNormalContention {
		t.Fatalf("type = %v\n%v", rep.Type, rep)
	}
	c := rep.PrimaryCause()
	if len(c.Flows) != 1 || c.Flows[0] != b1 {
		t.Fatalf("cause = %+v", c)
	}
}

func TestSignatureNone(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	rep := Diagnose(DefaultConfig(), g, tp, flowT(1))
	if rep.Type != TypeNone {
		t.Fatalf("type = %v on empty graph", rep.Type)
	}
}

func TestContributorThresholds(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	big, small, tiny := flowT(2), flowT(3), flowT(4)
	addPort(g, ref(0, 0), 3)
	addFlowPort(g, victim, ref(0, 0), 3)
	addPort(g, ref(1, 1), 0)
	addPortEdge(g, ref(0, 0), ref(1, 1), 10)
	addPortFlow(g, ref(1, 1), big, 100)
	addPortFlow(g, ref(1, 1), small, 5) // below ContributorFrac(0.1)*100
	addPortFlow(g, ref(1, 1), tiny, 0.5)

	cfg := DefaultConfig()
	rep := Diagnose(cfg, g, tp, victim)
	c := rep.PrimaryCause()
	if len(c.Flows) != 1 || c.Flows[0] != big {
		t.Fatalf("contributor filtering failed: %v", c.Flows)
	}
}

func TestSpreadersListed(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	spreader := flowT(5)
	addPort(g, ref(0, 0), 3)
	addPort(g, ref(1, 0), 3)
	addFlowPort(g, victim, ref(0, 0), 3)
	addFlowPort(g, spreader, ref(0, 0), 4)
	addFlowPort(g, spreader, ref(1, 0), 6)
	addPortEdge(g, ref(0, 0), ref(1, 0), 5)
	addPortFlow(g, ref(1, 0), spreader, 10)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if len(rep.Spreaders) != 1 || rep.Spreaders[0] != spreader {
		t.Fatalf("spreaders = %v", rep.Spreaders)
	}
}

func TestDeadlockFallbackRootsWhenVictimFrozen(t *testing.T) {
	// No victim flow-port evidence at all (telemetry froze): the walk
	// must start from live-paused ports and still find the loop.
	tp := testTopo(t)
	g := emptyGraph()
	loop := buildLoop(g)
	for _, p := range loop {
		g.Ports[p].PausedNow = true
	}
	rep := Diagnose(DefaultConfig(), g, tp, flowT(1))
	if len(rep.Loop) != 4 {
		t.Fatalf("fallback roots missed the loop: %v", rep)
	}
	if !rep.Type.IsDeadlock() {
		t.Fatalf("type = %v, want a deadlock", rep.Type)
	}
}

func TestReportStringAndTypeStrings(t *testing.T) {
	for ty := TypeNone; ty <= TypeOutLoopDeadlockInjection; ty++ {
		if strings.Contains(ty.String(), "AnomalyType") {
			t.Fatalf("missing String for %d", int(ty))
		}
	}
	_ = AnomalyType(99).String()
	_ = CauseFlowContention.String()
	_ = CauseHostInjection.String()
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	addPort(g, ref(0, 0), 1)
	addFlowPort(g, victim, ref(0, 0), 1)
	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if s := rep.String(); !strings.Contains(s, "diagnosis for") {
		t.Fatalf("report string: %s", s)
	}
}

func TestMultipleCausesBranching(t *testing.T) {
	// The victim's pause point fans out to TWO congested terminals; both
	// must be reported as causes, ordered by walk-origin weight, and
	// both branch paths listed.
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	hot1, hot2 := flowT(2), flowT(3)
	addPort(g, ref(0, 0), 5)
	addFlowPort(g, victim, ref(0, 0), 5)
	addPort(g, ref(1, 1), 0)
	addPort(g, ref(2, 1), 0)
	addPortEdge(g, ref(0, 0), ref(1, 1), 100) // heavier branch
	addPortEdge(g, ref(0, 0), ref(2, 1), 40)
	addPortFlow(g, ref(1, 1), hot1, 50)
	addPortFlow(g, ref(2, 1), hot2, 30)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type != TypePFCContention {
		t.Fatalf("type = %v", rep.Type)
	}
	if len(rep.Causes) != 2 {
		t.Fatalf("causes = %d, want both branches", len(rep.Causes))
	}
	if rep.Causes[0].Port != ref(1, 1) {
		t.Fatalf("primary cause %v, want the heavier branch", rep.Causes[0].Port)
	}
	if len(rep.PFCPaths) != 2 {
		t.Fatalf("paths = %d, want one per branch", len(rep.PFCPaths))
	}
}

func TestSelfEdgeDoesNotLoopForever(t *testing.T) {
	// A degenerate port-level self-edge must neither hang the DFS nor be
	// reported as a deadlock cycle (a CBD needs >= 2 ports).
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	addPort(g, ref(0, 0), 5)
	addFlowPort(g, victim, ref(0, 0), 5)
	addPortEdge(g, ref(0, 0), ref(0, 0), 10)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if rep.Type.IsDeadlock() {
		t.Fatalf("self-edge classified as deadlock: %v", rep.Type)
	}
}

func TestLongerLoopDetected(t *testing.T) {
	// A 6-port cycle spanning more switches (ports alternate indices).
	tp := topo.New(100e9, sim.Microsecond)
	var sws []topo.NodeID
	for i := 0; i < 6; i++ {
		sws = append(sws, tp.AddSwitch("sw"))
	}
	for i := 0; i < 6; i++ {
		tp.Connect(sws[i], sws[(i+1)%6])
	}
	h := tp.AddHost("h")
	tp.Connect(h, sws[0])
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	g := emptyGraph()
	victim := flowT(1)
	var loop []topo.PortRef
	for i := 0; i < 6; i++ {
		loop = append(loop, ref(i, 0))
	}
	for i := 0; i < 6; i++ {
		addPort(g, loop[i], 5)
		addPortEdge(g, loop[i], loop[(i+1)%6], 50)
	}
	// Victim paused at the loop's entry, in-loop contention flows present.
	addFlowPort(g, victim, loop[0], 5)
	f := flowT(9)
	addPortFlow(g, loop[2], f, 20)

	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if len(rep.Loop) != 6 {
		t.Fatalf("loop = %v, want all 6 ports", rep.Loop)
	}
	if rep.Type != TypeInLoopDeadlock {
		t.Fatalf("type = %v", rep.Type)
	}
}

func TestVictimPausedAtRecorded(t *testing.T) {
	tp := testTopo(t)
	g := emptyGraph()
	victim := flowT(1)
	addPort(g, ref(0, 0), 2)
	addPort(g, ref(1, 0), 3)
	addFlowPort(g, victim, ref(0, 0), 2)
	addFlowPort(g, victim, ref(1, 0), 3)
	rep := Diagnose(DefaultConfig(), g, tp, victim)
	if len(rep.VictimPausedAt) != 2 {
		t.Fatalf("VictimPausedAt = %v, want both pause points", rep.VictimPausedAt)
	}
}

func TestRefineCauseDetails(t *testing.T) {
	// Topology: host h(4) on sw0; sw0 has 2 equal-cost uplinks to sw1/sw2
	// which both reach sw3 with host h2(5)... keep it simple: fat-tree-ish
	// diamond.
	tp := topo.New(100e9, sim.Microsecond)
	s0 := tp.AddSwitch("s0")
	s1 := tp.AddSwitch("s1")
	s2 := tp.AddSwitch("s2")
	s3 := tp.AddSwitch("s3")
	hSrc := tp.AddHost("src")
	hDst := tp.AddHost("dst")
	tp.Connect(hSrc, s0)
	tp.Connect(s0, s1)
	tp.Connect(s0, s2)
	tp.Connect(s1, s3)
	tp.Connect(s2, s3)
	tp.Connect(hDst, s3)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(tp)

	dstIP := tp.Node(hDst).IP
	mkFlow := func(n uint32) packet.FiveTuple {
		return packet.FiveTuple{SrcIP: n, DstIP: dstIP, SrcPort: 1, DstPort: 2, Proto: 17}
	}
	upHops := r.NextHops(s0, hDst)
	if len(upHops) < 2 {
		t.Fatalf("diamond should give ECMP at s0: %v", upHops)
	}
	f1, f2 := mkFlow(1), mkFlow(2)

	// Non-contention cause -> unknown.
	if d := Refine(RootCause{Kind: CauseHostInjection}, r, tp); d != DetailUnknown {
		t.Fatalf("injection refined to %v", d)
	}
	// Flows polarized onto one of two equal-cost uplinks -> ECMP
	// imbalance, even when some also look bursty: the alternative-path
	// evidence is unambiguous, while a freshly started elephant is
	// indistinguishable from a burst at diagnosis time.
	polarized := RootCause{Kind: CauseFlowContention,
		Port:       topo.PortRef{Node: s0, Port: upHops[0]},
		Flows:      []packet.FiveTuple{f1, f2},
		BurstFlows: []packet.FiveTuple{f1}}
	if d := Refine(polarized, r, tp); d != DetailECMPImbalance {
		t.Fatalf("polarized flows refined to %v", d)
	}
	// Host-facing congested port: destination-bound, no alternative; the
	// contributors' shape decides burst vs overload.
	var hostPort int
	for pi := range tp.Node(s3).Ports {
		if tp.IsHostFacing(s3, pi) {
			hostPort = pi
		}
	}
	incastBurst := RootCause{Kind: CauseFlowContention,
		Port:       topo.PortRef{Node: s3, Port: hostPort},
		Flows:      []packet.FiveTuple{f1, f2},
		BurstFlows: []packet.FiveTuple{f1, f2}}
	if d := Refine(incastBurst, r, tp); d != DetailMicroBurst {
		t.Fatalf("host-port bursts refined to %v", d)
	}
	incast := RootCause{Kind: CauseFlowContention,
		Port:  topo.PortRef{Node: s3, Port: hostPort},
		Flows: []packet.FiveTuple{f1, f2}}
	if d := Refine(incast, r, tp); d != DetailOverload {
		t.Fatalf("host-port elephants refined to %v", d)
	}
	// String coverage.
	for d := DetailUnknown; d <= DetailOverload; d++ {
		if d.String() == "" {
			t.Fatalf("missing String for %d", int(d))
		}
	}
}

package fleet

import (
	"fmt"
	"testing"
)

func testFabrics(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("fab-%04d", i)
	}
	return out
}

// Two rings built from the same inputs (in any member order) must route
// every fabric identically — the cluster's only coordination is this
// determinism.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"s0", "s1", "s2"}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"s2", "s0", "s1"}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewRing([]string{"s0", "s1", "s2"}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	differ := 0
	for _, f := range testFabrics(2000) {
		if a.Owner(f) != b.Owner(f) {
			t.Fatalf("fabric %s: owner %s vs %s for identical rings", f, a.Owner(f), b.Owner(f))
		}
		if a.Owner(f) != other.Owner(f) {
			differ++
		}
	}
	// A different seed is a different layout: about 2/3 of fabrics should
	// land elsewhere on a 3-shard ring.
	if differ < 800 {
		t.Fatalf("seed change moved only %d/2000 fabrics; layouts too correlated", differ)
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0, 1); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0, 1); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0, 1); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
}

// With 128 vnodes per shard, no shard's share of fabrics should stray
// wildly from 1/N.
func TestRingBalance(t *testing.T) {
	shards := []string{"s0", "s1", "s2", "s3"}
	r, err := NewRing(shards, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := testFabrics(4000)
	counts := make(map[string]int)
	for _, f := range fabrics {
		counts[r.Owner(f)]++
	}
	for _, s := range shards {
		share := float64(counts[s]) / float64(len(fabrics))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("shard %s owns %.0f%% of fabrics (counts %v)", s, share*100, counts)
		}
	}
}

// Growing the membership must move fabrics only onto the new shard, and
// roughly 1/(N+1) of them; shrinking must move only the removed shard's
// fabrics. Everything else stays put — the bounded-reshard contract.
func TestRingReshardBounds(t *testing.T) {
	fabrics := testFabrics(3000)
	three, err := NewRing([]string{"s0", "s1", "s2"}, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	four, err := NewRing([]string{"s0", "s1", "s2", "s3"}, 0, 11)
	if err != nil {
		t.Fatal(err)
	}

	grow := Plan(three, four, fabrics)
	for _, m := range grow {
		if m.To != "s3" {
			t.Fatalf("grow moved %s from %s to surviving shard %s", m.Fabric, m.From, m.To)
		}
	}
	frac := float64(len(grow)) / float64(len(fabrics))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("grow moved %.0f%% of fabrics, want near 25%%", frac*100)
	}
	for i := 1; i < len(grow); i++ {
		if grow[i-1].Fabric >= grow[i].Fabric {
			t.Fatalf("plan not sorted: %q before %q", grow[i-1].Fabric, grow[i].Fabric)
		}
	}

	shrink := Plan(four, three, fabrics)
	if len(shrink) != len(grow) {
		t.Fatalf("shrink plan has %d moves, grow had %d; reshard not symmetric", len(shrink), len(grow))
	}
	for _, m := range shrink {
		if m.From != "s3" {
			t.Fatalf("shrink moved %s owned by surviving shard %s", m.Fabric, m.From)
		}
	}
	// Every fabric the removed shard owned must be in the plan.
	for _, f := range fabrics {
		if four.Owner(f) == "s3" {
			found := false
			for _, m := range shrink {
				if m.Fabric == f {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("fabric %s owned by removed shard has no move", f)
			}
		}
	}
}

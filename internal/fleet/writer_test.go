package fleet

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/fleetstore"
)

func testRetry(seed uint64) analyzd.RetryConfig {
	return analyzd.RetryConfig{
		MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond, JitterFrac: 0.2, Seed: seed,
	}
}

// promotedShard opens dir once to claim epoch 1, then serves it with a
// promotion bump — a server whose epoch strictly exceeds a fresh
// sibling's, without needing a replication chain.
func promotedShard(t *testing.T, dir, shard string) *analyzd.Server {
	t.Helper()
	st, err := fleetstore.Open(dir, killLoopStoreCfg())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	srv, err := analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
		DataDir:   dir,
		Shard:     shard,
		Fleet:     killLoopStoreCfg(),
		Rollup:    killLoopRollupCfg(),
		BumpEpoch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestWriterWriteAndResendDedup: the writer's idempotent resend
// contract end to end — a re-invocation with the same reserved
// sequence is acked as a duplicate and the store admits once.
func TestWriterWriteAndResendDedup(t *testing.T) {
	dir := t.TempDir()
	srv := testShard(t, filepath.Join(dir, "s0"), "s0")
	defer srv.Close()

	w, err := NewWriter(WriterConfig{
		Specs: []ShardSpec{{Name: "s0", Addr: srv.Addr()}},
		Seed:  1, Retry: testRetry(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	seq := w.NextOriginSeq("fabA")
	ack, err := w.WriteSeq("fabA", seq, testRec("fabA", 0))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Duplicate {
		t.Fatal("first write acked as duplicate")
	}
	if ack.Epoch == 0 {
		t.Fatal("ack carries no epoch")
	}
	// The resend path: same sequence, positive ack, no second admission.
	ack2, err := w.WriteSeq("fabA", seq, testRec("fabA", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !ack2.Duplicate {
		t.Fatal("resend not classified as duplicate")
	}
	if got := srv.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode}); len(got) != 1 {
		t.Fatalf("store admitted %d records, want 1", len(got))
	}
	if w.Duplicates.Load() != 1 {
		t.Fatalf("writer counted %d duplicates, want 1", w.Duplicates.Load())
	}
}

// TestWriterSurvivesFailover: ingest across a primary kill +
// promotion. The writer keeps the same idempotency stream; after
// Update repoints the shard, every record before and after the kill is
// present exactly once on the promoted store.
func TestWriterSurvivesFailover(t *testing.T) {
	dir := t.TempDir()
	srv := testShard(t, filepath.Join(dir, "gen0"), "s0")
	defer func() { srv.Close() }()

	fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: filepath.Join(dir, "gen1")})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()

	w, err := NewWriter(WriterConfig{
		Specs: []ShardSpec{{Name: "s0", Addr: srv.Addr()}},
		Seed:  2, Retry: testRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 10; i++ {
		if _, err := w.Write("fabA", testRec("fabA", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fl.WaitForSeq(srv.Fleet().Seq(), 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill, promote the follower's directory, repoint the writer.
	srv.Fleet().Abort()
	srv.Close()
	if err := fl.Stop(); err != nil {
		t.Fatal(err)
	}
	srv2, err := analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
		DataDir: filepath.Join(dir, "gen1"), Shard: "s0",
		Fleet: killLoopStoreCfg(), Rollup: killLoopRollupCfg(), BumpEpoch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = srv2
	if err := w.Update(ShardSpec{Name: "s0", Addr: srv2.Addr()}); err != nil {
		t.Fatal(err)
	}

	for i := 10; i < 20; i++ {
		if _, err := w.Write("fabA", testRec("fabA", i)); err != nil {
			t.Fatal(err)
		}
	}
	recs := srv2.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode})
	if len(recs) != 20 {
		t.Fatalf("promoted store has %d records, want 20", len(recs))
	}
	seen := make(map[string]bool)
	for _, r := range recs {
		if seen[r.Victim] {
			t.Fatalf("victim %s admitted twice across the failover", r.Victim)
		}
		seen[r.Victim] = true
	}
}

// TestWriterReroutesOnFence: a writer stuck on a fenced (superseded)
// primary must surface the typed error, and once Update repoints the
// shard mid-retry it must land the write on the live primary — the
// self-healing loop.
func TestWriterReroutesOnFence(t *testing.T) {
	dir := t.TempDir()
	stale := testShard(t, filepath.Join(dir, "stale"), "s0")
	defer stale.Close()
	promoted := promotedShard(t, filepath.Join(dir, "promoted"), "s0")
	defer promoted.Close()
	if se, pe := stale.Fleet().Epoch(), promoted.Fleet().Epoch(); se >= pe {
		t.Fatalf("test setup: stale epoch %d not behind promoted %d", se, pe)
	}

	// Fence the stale primary the way the cluster would: announce the
	// promoted epoch.
	c, err := analyzd.DialOperatorRetry(stale.Addr(), testRetry(3))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.AnnounceEpoch("s0", promoted.Fleet().Epoch())
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Fenced {
		t.Fatal("announce did not fence the stale primary")
	}

	w, err := NewWriter(WriterConfig{
		Specs: []ShardSpec{{Name: "s0", Addr: stale.Addr()}},
		Seed:  3, Retry: testRetry(3), MaxAttempts: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Repoint the shard while the write is retrying against the fence.
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = w.Update(ShardSpec{Name: "s0", Addr: promoted.Addr()})
	}()
	ack, err := w.Write("fabA", testRec("fabA", 0))
	if err != nil {
		t.Fatalf("write never healed: %v", err)
	}
	if ack.Epoch != promoted.Fleet().Epoch() {
		t.Fatalf("ack epoch %d, want promoted %d", ack.Epoch, promoted.Fleet().Epoch())
	}
	if w.Reroutes.Load() == 0 {
		t.Fatal("no fence reroutes counted")
	}
	if got := promoted.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode}); len(got) != 1 {
		t.Fatalf("promoted store has %d records, want 1", len(got))
	}
	if got := stale.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode}); len(got) != 0 {
		t.Fatalf("fenced store admitted %d records", len(got))
	}

	// With nowhere to heal to, the typed error surfaces to the caller.
	w2, err := NewWriter(WriterConfig{
		Specs: []ShardSpec{{Name: "s0", Addr: stale.Addr()}},
		Seed:  4, Retry: testRetry(4), MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if _, err := w2.Write("fabB", testRec("fabB", 1)); !errors.Is(err, analyzd.ErrFenced) {
		t.Fatalf("exhausted write error %v, want ErrFenced", err)
	}
}

// TestExecutorMovesFabricLive: one reshard move against two live
// shards — freeze, copy, release, adopt — with the writer and front
// door following the migration: records land exactly once on the new
// owner, the old owner refuses the fabric, epochs bump on both sides.
func TestExecutorMovesFabricLive(t *testing.T) {
	dir := t.TempDir()
	s0 := testShard(t, filepath.Join(dir, "s0"), "s0")
	defer s0.Close()
	s1 := testShard(t, filepath.Join(dir, "s1"), "s1")
	defer s1.Close()
	specs := []ShardSpec{{Name: "s0", Addr: s0.Addr()}, {Name: "s1", Addr: s1.Addr()}}
	srvs := map[string]*analyzd.Server{"s0": s0, "s1": s1}
	names := []string{"s0", "s1"}
	fabrics := []string{"fab00", "fab01", "fab02", "fab03", "fab04", "fab05"}

	oldRing, err := NewRing(names, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	nextRing, moves := replanRing(names, fabrics, oldRing, 7)
	if len(moves) == 0 {
		t.Fatal("no reshard plan found")
	}

	w, err := NewWriter(WriterConfig{Specs: specs, Seed: 7, Retry: testRetry(7)})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	fd, err := NewFrontdoor(specs, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	perFabric := 5
	for _, f := range fabrics {
		for i := 0; i < perFabric; i++ {
			if _, err := w.Write(f, testRec(f, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	epochsBefore := map[string]uint64{"s0": s0.Fleet().Epoch(), "s1": s1.Fleet().Epoch()}

	rs := NewReshardState(oldRing, nextRing, moves)
	w.SetReshard(rs)
	fd.SetReshard(rs)
	ex, err := NewExecutor(specs, testRetry(7))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	report, err := ex.Execute(rs)
	if err != nil {
		t.Fatalf("reshard: %v", err)
	}
	if !rs.Done() {
		t.Fatal("executor returned with moves pending")
	}
	w.FinishReshard()
	fd.FinishReshard()

	for _, mr := range report.Moves {
		if mr.Copied != perFabric {
			t.Fatalf("move %s copied %d, want %d", mr.Move.Fabric, mr.Copied, perFabric)
		}
		if mr.Purged != perFabric {
			t.Fatalf("move %s purged %d, want %d", mr.Move.Fabric, mr.Purged, perFabric)
		}
		if mr.FromEpoch <= epochsBefore[mr.Move.From] {
			t.Fatalf("move %s: release did not bump %s's epoch", mr.Move.Fabric, mr.Move.From)
		}
		if mr.ToEpoch <= epochsBefore[mr.Move.To] {
			t.Fatalf("move %s: adopt did not bump %s's epoch", mr.Move.Fabric, mr.Move.To)
		}
	}

	// Every fabric's records live exactly once on the NEXT ring's owner;
	// the old owner holds none of a moved fabric and refuses its writes.
	for _, f := range fabrics {
		owner := nextRing.Owner(f)
		got := srvs[owner].Fleet().Records(fleetstore.Query{Fabric: f, Node: fleetstore.AnyNode})
		if len(got) != perFabric {
			t.Fatalf("fabric %s: owner %s holds %d records, want %d", f, owner, len(got), perFabric)
		}
	}
	for _, m := range moves {
		if got := srvs[m.From].Fleet().Records(fleetstore.Query{Fabric: m.Fabric, Node: fleetstore.AnyNode}); len(got) != 0 {
			t.Fatalf("moved fabric %s still has %d records at %s", m.Fabric, len(got), m.From)
		}
		if !srvs[m.From].Fleet().MovedOut(m.Fabric) {
			t.Fatalf("moved fabric %s not marked moved-out at %s", m.Fabric, m.From)
		}
	}

	// Post-migration ingest follows the new ring.
	moved := moves[0].Fabric
	if _, err := w.Write(moved, testRec(moved, perFabric)); err != nil {
		t.Fatal(err)
	}
	got := srvs[nextRing.Owner(moved)].Fleet().Records(fleetstore.Query{Fabric: moved, Node: fleetstore.AnyNode})
	if len(got) != perFabric+1 {
		t.Fatalf("post-migration write landed wrong: owner holds %d", len(got))
	}
	if spec := fd.Owner(moved); spec.Name != nextRing.Owner(moved) {
		t.Fatalf("front door routes %s to %s, ring says %s", moved, spec.Name, nextRing.Owner(moved))
	}
}

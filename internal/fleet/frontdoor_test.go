package fleet

import (
	"path/filepath"
	"testing"
	"time"

	"hawkeye/internal/rollup"
	"hawkeye/internal/wire"
)

// Two shards answering a fleet-wide query: incidents merge in
// first-seen order, rollup windows merge to exactly what one
// summarizer observing every record would have said, and the sketch
// payloads stay opt-in.
func TestFrontdoorMergeMatchesReference(t *testing.T) {
	dir := t.TempDir()
	a := testShard(t, filepath.Join(dir, "a"), "shard-a")
	defer a.Close()
	b := testShard(t, filepath.Join(dir, "b"), "shard-b")
	defer b.Close()

	reference := rollup.New(killLoopRollupCfg())
	// Interleave fabrics across both shards over a shared time range so
	// every rollup pane has contributions from both.
	for i := 0; i < 40; i++ {
		rec := testRec("fabA", i)
		if i%2 == 1 {
			rec.Fabric = "fabB"
		}
		var got = rec
		if i%2 == 0 {
			got = a.Fleet().Add(rec)
		} else {
			got = b.Fleet().Add(rec)
		}
		reference.ObserveRecord(&got)
	}

	fd, err := NewFrontdoor([]ShardSpec{
		{Name: "shard-a", Addr: a.Addr()},
		{Name: "shard-b", Addr: b.Addr()},
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	incs, shardErrs, err := fd.QueryIncidents(wire.IncidentQuery{Node: -1})
	if err != nil || len(shardErrs) != 0 {
		t.Fatalf("incidents: err=%v shardErrs=%v", err, shardErrs)
	}
	if len(incs) == 0 {
		t.Fatal("no incidents merged")
	}
	for i := 1; i < len(incs); i++ {
		if incs[i-1].FirstNS > incs[i].FirstNS {
			t.Fatalf("merged incidents out of order at %d", i)
		}
	}

	res, shardErrs, err := fd.QueryRollups(wire.RollupQuery{})
	if err != nil || len(shardErrs) != 0 {
		t.Fatalf("rollups: err=%v shardErrs=%v", err, shardErrs)
	}
	if err := compareRollups(res.Windows, reference.Query(rollup.QueryOpts{}).Panes); err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Windows {
		if w.Sketches != nil {
			t.Fatal("sketch state leaked into a query that did not ask for it")
		}
	}
	res, _, err = fd.QueryRollups(wire.RollupQuery{IncludeSketches: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Windows {
		if len(w.Sketches) == 0 {
			t.Fatal("IncludeSketches returned a window without sketch state")
		}
	}
}

// A dead shard degrades a fleet-wide query to partial results with the
// failure reported per shard; health rows mark it unreachable instead
// of failing the probe.
func TestFrontdoorPartialResultsWithShardDown(t *testing.T) {
	dir := t.TempDir()
	a := testShard(t, filepath.Join(dir, "a"), "shard-a")
	defer a.Close()
	b := testShard(t, filepath.Join(dir, "b"), "shard-b")

	for i := 0; i < 6; i++ {
		a.Fleet().Add(testRec("fabA", i))
	}
	for i := 6; i < 12; i++ {
		b.Fleet().Add(testRec("fabB", i))
	}

	fd, err := NewFrontdoor([]ShardSpec{
		{Name: "shard-a", Addr: a.Addr()},
		{Name: "shard-b", Addr: b.Addr()},
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	// Healthy cluster first, so the front door has cached sessions that
	// must be invalidated when the shard dies.
	if _, errs, err := fd.QueryIncidents(wire.IncidentQuery{Node: -1}); err != nil || len(errs) != 0 {
		t.Fatalf("healthy query: err=%v errs=%v", err, errs)
	}

	b.Fleet().Abort()
	b.Close()

	incs, shardErrs, err := fd.QueryIncidents(wire.IncidentQuery{Node: -1})
	if err != nil {
		t.Fatalf("partial query failed outright: %v", err)
	}
	if len(shardErrs) != 1 || shardErrs[0].Shard != "shard-b" {
		t.Fatalf("shard errors = %v, want one for shard-b", shardErrs)
	}
	if len(incs) == 0 {
		t.Fatal("surviving shard's incidents missing from partial result")
	}

	rows := fd.Health()
	if len(rows) != 2 {
		t.Fatalf("health rows = %d, want 2", len(rows))
	}
	for _, row := range rows {
		switch row.Spec.Name {
		case "shard-a":
			if row.Err != nil || row.Health == nil || row.Info == nil {
				t.Fatalf("healthy shard row: %+v", row)
			}
			if row.Info.Shard != "shard-a" {
				t.Fatalf("shard identity %q, want shard-a", row.Info.Shard)
			}
		case "shard-b":
			if row.Err == nil {
				t.Fatal("dead shard reported healthy")
			}
		}
	}
}

// Fabric-scoped requests route to the ring owner alone.
func TestFrontdoorFabricScopedRouting(t *testing.T) {
	dir := t.TempDir()
	a := testShard(t, filepath.Join(dir, "a"), "shard-a")
	defer a.Close()
	b := testShard(t, filepath.Join(dir, "b"), "shard-b")
	defer b.Close()

	fd, err := NewFrontdoor([]ShardSpec{
		{Name: "shard-a", Addr: a.Addr()},
		{Name: "shard-b", Addr: b.Addr()},
	}, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	// Route records the way a writer would, then ask the front door for
	// one fabric: only the owner's records can answer.
	owner := fd.Owner("fabX")
	var ownerSrv = a
	if owner.Name == "shard-b" {
		ownerSrv = b
	}
	for i := 0; i < 5; i++ {
		ownerSrv.Fleet().Add(testRec("fabX", i))
	}
	incs, shardErrs, err := fd.QueryIncidents(wire.IncidentQuery{Fabric: "fabX", Node: -1})
	if err != nil || len(shardErrs) != 0 {
		t.Fatalf("scoped query: err=%v errs=%v", err, shardErrs)
	}
	if len(incs) == 0 {
		t.Fatal("owner shard returned no incidents for its fabric")
	}
}

// A cluster-wide tail merges incident events from every shard,
// annotated with their source.
func TestFrontdoorSubscribe(t *testing.T) {
	dir := t.TempDir()
	a := testShard(t, filepath.Join(dir, "a"), "shard-a")
	defer a.Close()
	b := testShard(t, filepath.Join(dir, "b"), "shard-b")
	defer b.Close()

	fd, err := NewFrontdoor([]ShardSpec{
		{Name: "shard-a", Addr: a.Addr()},
		{Name: "shard-b", Addr: b.Addr()},
	}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	tail, shardErrs, err := fd.Subscribe(wire.SubscribeRequest{Node: -1}, 16)
	if err != nil || len(shardErrs) != 0 {
		t.Fatalf("subscribe: err=%v errs=%v", err, shardErrs)
	}
	defer tail.Close()

	a.Fleet().Add(testRec("fabA", 0))
	b.Fleet().Add(testRec("fabB", 1))

	got := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(got) < 2 {
		select {
		case ev, ok := <-tail.Events():
			if !ok {
				t.Fatalf("tail closed early; saw %v", got)
			}
			got[ev.Shard] = true
		case <-deadline:
			t.Fatalf("timed out; saw %v", got)
		}
	}
	if !got["shard-a"] || !got["shard-b"] {
		t.Fatalf("events from %v, want both shards", got)
	}
}

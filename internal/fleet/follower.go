package fleet

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hawkeye/internal/fleetstore"
	"hawkeye/internal/fleetstore/wal"
	"hawkeye/internal/wire"
)

// A Follower is a shard's warm standby: it holds a replication session
// against the primary analyzer and mirrors every admitted record into
// its own write-ahead log — the byte-identical payloads the primary
// logged, under the primary's sequence numbers — plus every shipped
// snapshot. Its directory is laid out exactly like a durable fleet
// store's, so promotion is nothing new: stop the stream and
// fleetstore.Open the directory, replaying through the same snapshot +
// WAL recovery path every crash-restart test already proves.
//
// The stream is admission-validated (wire.ReplValidator): a frame with
// a replayed sequence number, an unparseable record or out-of-bounds
// fields tears the session, and the follower re-syncs from its own
// durable watermark. Records can arrive slightly out of sequence order
// — the primary's concurrent admissions publish in completion order —
// so the follower keeps a bounded reorder window and only acknowledges
// the highest CONTIGUOUS durable sequence. That contiguity is what
// makes the ack a real barrier: when AckedSeq reports s, every record
// the primary admitted at or below s survives this follower's crash
// and the primary's.

// FollowerConfig shapes a follower. Addr and Dir are required.
type FollowerConfig struct {
	// Addr is the primary analyzer's address.
	Addr string
	// Dir is the follower's durable directory (fleet-store layout:
	// snapshots at the root, WAL segments under wal/).
	Dir string
	// Reorder bounds the out-of-order admission window (0 = 256). More
	// than this many durable records waiting on a sequence gap tears
	// the session; the re-sync either fills the gap or ships a snapshot
	// past it.
	Reorder int
	// AckEvery sends the durable watermark upstream after this many
	// admitted records (0 = 1: every advance). Snapshots always ack.
	AckEvery int
	// ReconnectDelay paces redials after a torn session (0 = 50ms),
	// doubling up to MaxReconnectDelay (0 = 1s).
	ReconnectDelay    time.Duration
	MaxReconnectDelay time.Duration
	// DialTimeout bounds each dial (0 = 2s).
	DialTimeout time.Duration
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.Reorder <= 0 {
		c.Reorder = 256
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 1
	}
	if c.ReconnectDelay <= 0 {
		c.ReconnectDelay = 50 * time.Millisecond
	}
	if c.MaxReconnectDelay <= 0 {
		c.MaxReconnectDelay = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	return c
}

// Follower is a running replication sink. Safe for concurrent use of
// the accessors; Stop and Promote serialize themselves.
type Follower struct {
	cfg FollowerConfig
	log *wal.Log

	// mu guards conn and pending against Stop and the accessors.
	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]bool // durable seqs above the contiguous watermark
	stopped bool

	acked   atomic.Uint64 // highest contiguous durable seq
	epoch   atomic.Uint64 // primary's fencing epoch, mirrored durably
	snapSeq atomic.Uint64 // newest shipped snapshot
	records atomic.Uint64 // records admitted (not skipped duplicates)
	snaps   atomic.Uint64 // snapshots shipped
	resyncs atomic.Uint64 // sessions torn and re-established
	rejects atomic.Uint64 // frames the validator refused

	quit     chan struct{}
	quitOnce sync.Once
	done     chan struct{}
}

// StartFollower opens (or reopens) the follower's durable directory,
// rebuilds its watermark from what is already on disk, and starts the
// replication loop: dial the primary, stream, and on any failure back
// off and re-sync from the durable watermark until Stop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("fleet: follower needs Addr and Dir")
	}
	snapSeq, _, ok, err := wal.LoadSnapshot(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: follower snapshot: %w", err)
	}
	if !ok {
		snapSeq = 0
	}
	// Collect the durable sequence set to rebuild the contiguous
	// watermark; payloads are not needed, the WAL is the state.
	seen := make(map[uint64]bool)
	// Synchronous appends: the single stream goroutine gains nothing
	// from group commit, and Append's return doubling as the durability
	// barrier is what the ack watermark is built on.
	log, _, err := wal.Open(filepath.Join(cfg.Dir, "wal"), wal.Options{GroupWindow: -1},
		func(seq uint64, payload []byte) error {
			if seq > snapSeq {
				seen[seq] = true
			}
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("fleet: follower wal: %w", err)
	}
	f := &Follower{
		cfg:     cfg,
		log:     log,
		pending: make(map[uint64]bool),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	// The mirrored fencing epoch survives restarts with the WAL: a
	// promotion from this directory must exceed the primary's epoch even
	// if the follower process bounced in between.
	epoch, err := wal.LoadEpoch(cfg.Dir)
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("fleet: follower epoch: %w", err)
	}
	f.epoch.Store(epoch)
	w := snapSeq
	for seen[w+1] {
		w++
		delete(seen, w)
	}
	for seq := range seen {
		f.pending[seq] = true
	}
	f.acked.Store(w)
	f.snapSeq.Store(snapSeq)
	go f.run()
	return f, nil
}

// AckedSeq is the highest contiguous durable sequence — the semi-sync
// barrier: every admission at or below it survives primary loss.
func (f *Follower) AckedSeq() uint64 { return f.acked.Load() }

// SnapshotSeq is the newest shipped snapshot's covered sequence.
func (f *Follower) SnapshotSeq() uint64 { return f.snapSeq.Load() }

// Epoch is the primary's fencing epoch as durably mirrored here; a
// promotion from this directory bumps strictly past it.
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// Records counts admissions mirrored into the local WAL this session.
func (f *Follower) Records() uint64 { return f.records.Load() }

// Snapshots counts snapshots shipped and persisted.
func (f *Follower) Snapshots() uint64 { return f.snaps.Load() }

// Resyncs counts torn-and-reestablished replication sessions.
func (f *Follower) Resyncs() uint64 { return f.resyncs.Load() }

// Rejects counts frames the replication validator refused.
func (f *Follower) Rejects() uint64 { return f.rejects.Load() }

// Connected reports whether a replication session is currently
// established — the signal an auto-promotion watchdog keys off.
func (f *Follower) Connected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conn != nil
}

// Pending is the reorder window's current depth.
func (f *Follower) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pending)
}

// WaitForSeq blocks until the durable watermark reaches seq or the
// timeout passes — the acknowledgement barrier a semi-sync writer (or
// a test) waits on.
func (f *Follower) WaitForSeq(seq uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for f.acked.Load() < seq {
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet: follower watermark %d short of %d after %s",
				f.acked.Load(), seq, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// Stop tears the replication session and closes the local WAL. The
// directory is left ready for Promote (or a later StartFollower).
// Idempotent.
func (f *Follower) Stop() error {
	f.quitOnce.Do(func() { close(f.quit) })
	f.mu.Lock()
	f.stopped = true
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	<-f.done
	return f.log.Close()
}

// Promote stops replication and opens the mirrored directory as a
// full fleet store — the failover moment. The returned store holds
// every acknowledged admission; the caller serves it as the shard's
// new primary (typically via analyzd.ListenOpts with DataDir set to
// the follower's directory).
func (f *Follower) Promote(cfg fleetstore.Config) (*fleetstore.Store, error) {
	if err := f.Stop(); err != nil {
		return nil, fmt.Errorf("fleet: promote: close wal: %w", err)
	}
	// Fencing: the promoted store's epoch strictly exceeds the mirrored
	// primary's, so the old primary demotes itself on first contact.
	cfg.BumpEpoch = true
	return fleetstore.Open(f.cfg.Dir, cfg)
}

// run is the supervision loop: stream until torn, back off, re-sync.
func (f *Follower) run() {
	defer close(f.done)
	delay := f.cfg.ReconnectDelay
	for {
		select {
		case <-f.quit:
			return
		default:
		}
		err := f.stream()
		if err == nil {
			return // Stop
		}
		f.resyncs.Add(1)
		select {
		case <-f.quit:
			return
		case <-time.After(delay):
		}
		if delay *= 2; delay > f.cfg.MaxReconnectDelay {
			delay = f.cfg.MaxReconnectDelay
		}
	}
}

// errFollowerStopped distinguishes Stop-induced teardown inside stream.
var errFollowerStopped = errors.New("fleet: follower stopped")

// stream runs one replication session: operator handshake, a
// MsgReplicate from the durable watermark, then the validated frame
// loop. Returns nil only when Stop ended the session.
func (f *Follower) stream() error {
	conn, err := net.DialTimeout("tcp", f.cfg.Addr, f.cfg.DialTimeout)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		conn.Close()
		return nil
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		conn.Close()
		f.mu.Lock()
		if f.conn == conn {
			f.conn = nil
		}
		f.mu.Unlock()
	}()

	fail := func(err error) error {
		select {
		case <-f.quit:
			return nil
		default:
			return err
		}
	}

	if err := wire.WriteJSON(conn, wire.MsgHello, wire.Hello{Version: wire.ProtocolVersion}); err != nil {
		return fail(err)
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return fail(err)
	}
	if mt != wire.MsgHelloOK {
		return fail(fmt.Errorf("fleet: handshake reply type %d: %s", mt, payload))
	}

	from := f.acked.Load()
	// The request carries our mirrored epoch: a primary that sees a
	// higher epoch than its own learns it was superseded and demotes
	// itself instead of serving a stale stream.
	if err := wire.WriteJSON(conn, wire.MsgReplicate, wire.ReplicateRequest{FromSeq: from, Epoch: f.epoch.Load()}); err != nil {
		return fail(err)
	}
	v := wire.NewReplValidator(from)
	sinceAck := 0
	for {
		mt, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return fail(err)
		}
		switch {
		case mt == wire.MsgReplRecord:
			seq, body, err := v.CheckRecord(payload)
			if err != nil {
				f.rejects.Add(1)
				return fail(fmt.Errorf("fleet: replication record refused: %w", err))
			}
			advanced, err := f.admit(seq, body)
			if err != nil {
				return fail(err)
			}
			v.Commit(f.acked.Load())
			if advanced {
				if sinceAck++; sinceAck >= f.cfg.AckEvery {
					sinceAck = 0
					if err := wire.WriteJSON(conn, wire.MsgReplAck, wire.ReplAck{Seq: f.acked.Load(), Epoch: f.epoch.Load()}); err != nil {
						return fail(err)
					}
				}
			}
		case mt == wire.MsgReplSnapshot:
			seq, body, err := wire.DecodeReplSnapshot(payload)
			if err != nil {
				f.rejects.Add(1)
				return fail(fmt.Errorf("fleet: replication snapshot refused: %w", err))
			}
			if err := f.admitSnapshot(seq, body); err != nil {
				return fail(err)
			}
			v.Commit(f.acked.Load())
			sinceAck = 0
			if err := wire.WriteJSON(conn, wire.MsgReplAck, wire.ReplAck{Seq: f.acked.Load(), Epoch: f.epoch.Load()}); err != nil {
				return fail(err)
			}
		case mt == wire.MsgEpoch:
			// The primary's epoch announce (stream start, promotion or
			// cutover bump): mirror it durably before acking anything past
			// it, so Promote from this directory always supersedes it.
			ea, err := wire.ParseEpochAnnounce(payload)
			if err != nil {
				f.rejects.Add(1)
				return fail(fmt.Errorf("fleet: epoch announce refused: %w", err))
			}
			if ea.Epoch > f.epoch.Load() {
				if err := wal.WriteEpoch(f.cfg.Dir, ea.Epoch); err != nil {
					return fail(fmt.Errorf("fleet: mirror epoch: %w", err))
				}
				f.epoch.Store(ea.Epoch)
			}
			if err := wire.WriteJSON(conn, wire.MsgReplAck, wire.ReplAck{Seq: f.acked.Load(), Epoch: f.epoch.Load()}); err != nil {
				return fail(err)
			}
		case mt == wire.MsgFence:
			// The primary refused us as fenced (it observed a higher epoch
			// than it holds — typically because our own mirrored epoch
			// outranks it). Tear and retry; the operator repoints us at the
			// real primary.
			return fail(fmt.Errorf("fleet: primary fenced: %s", payload))
		case mt == wire.MsgShutdown:
			// The primary is draining; re-sync against whoever answers
			// at this address next (a restart, or a promoted peer the
			// operator repointed us at).
			return fail(fmt.Errorf("fleet: primary draining"))
		case mt == wire.MsgError:
			return fail(fmt.Errorf("fleet: primary refused replication: %s", payload))
		case !wire.Known(mt):
			continue // forward compatibility: skip frames a newer primary adds
		default:
			return fail(fmt.Errorf("fleet: unexpected frame type %d on replication stream", mt))
		}
	}
}

// admit makes one record durable and advances the contiguous
// watermark. Duplicates (a re-sync overlaps the reorder window) are
// skipped without re-appending. Reports whether the watermark moved.
func (f *Follower) admit(seq uint64, payload []byte) (bool, error) {
	f.mu.Lock()
	if seq <= f.acked.Load() || f.pending[seq] {
		f.mu.Unlock()
		return false, nil // already durable here
	}
	f.mu.Unlock()

	// Append outside mu: the WAL serializes itself, and Stop must not
	// wait behind an fsync.
	if err := f.log.Append(seq, payload); err != nil {
		if errors.Is(err, wal.ErrClosed) {
			return false, errFollowerStopped
		}
		return false, fmt.Errorf("fleet: follower append: %w", err)
	}
	f.records.Add(1)

	f.mu.Lock()
	defer f.mu.Unlock()
	f.pending[seq] = true
	w := f.acked.Load()
	advanced := false
	for f.pending[w+1] {
		w++
		delete(f.pending, w)
		advanced = true
	}
	if advanced {
		f.acked.Store(w)
	}
	if len(f.pending) > f.cfg.Reorder {
		// A gap stalled the window past its bound — likely a record the
		// primary admitted but never durably logged (WAL error). Tear
		// and re-sync: the primary answers from its WAL (the gap is
		// absent there too, so the stream is contiguous again) or ships
		// a snapshot past it.
		return advanced, fmt.Errorf("fleet: reorder window overflow at %d pending (watermark %d)",
			len(f.pending), w)
	}
	return advanced, nil
}

// admitSnapshot persists a shipped snapshot and jumps the watermark to
// its covered sequence: a snapshot at seq subsumes every admission at
// or below it.
func (f *Follower) admitSnapshot(seq uint64, payload []byte) error {
	if seq < f.acked.Load() {
		return nil // older than what the WAL already covers
	}
	if err := wal.WriteSnapshot(f.cfg.Dir, seq, payload); err != nil {
		return fmt.Errorf("fleet: follower snapshot: %w", err)
	}
	f.snaps.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if seq > f.snapSeq.Load() {
		f.snapSeq.Store(seq)
	}
	if seq > f.acked.Load() {
		f.acked.Store(seq)
	}
	for s := range f.pending {
		if s <= seq {
			delete(f.pending, s)
		}
	}
	// The watermark may now continue through records that arrived ahead
	// of the snapshot.
	w := f.acked.Load()
	for f.pending[w+1] {
		w++
		delete(f.pending, w)
	}
	f.acked.Store(w)
	return nil
}

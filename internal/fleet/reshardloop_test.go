package fleet

import (
	"flag"
	"testing"
)

// -fleet.reshard.seeds widens the partition+reshard sweep; CI's
// reshard-smoke job runs 20 under -race, the default keeps
// `go test ./...` quick.
var reshardSeeds = flag.Int("fleet.reshard.seeds", 2, "partition+reshard trials to run")

// TestReshardLoop is the epoch-fencing acceptance gate: a cluster
// ingesting through the resilient writer survives primary kills,
// follower promotions, revived stale primaries behind a partition, and
// one live reshard per trial — with every acked record exactly once on
// its final owner, zero post-fence acks from stale primaries, and
// front-door rollup merges identical to a single reference summarizer.
func TestReshardLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("partition+reshard trials are not short")
	}
	for seed := 0; seed < *reshardSeeds; seed++ {
		seed := uint64(seed)
		dir := t.TempDir()
		rep, err := ReshardLoop(dir, seed, ReshardLoopConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if rep.Failovers != rep.Rounds {
			t.Fatalf("seed %d: %d failovers over %d rounds: %s", seed, rep.Failovers, rep.Rounds, rep)
		}
		// Every round fences its revived stale primary twice; the trial
		// always runs exactly one reshard that moves at least one fabric.
		if rep.StaleFenced != 2*rep.Rounds {
			t.Fatalf("seed %d: %d fence refusals over %d rounds: %s", seed, rep.StaleFenced, rep.Rounds, rep)
		}
		if rep.Moves == 0 {
			t.Fatalf("seed %d: reshard moved nothing: %s", seed, rep)
		}
		if rep.Acked == 0 || rep.MergedWindows == 0 {
			t.Fatalf("seed %d: degenerate trial: %s", seed, rep)
		}
		t.Logf("seed %d: %s", seed, rep)
	}
}

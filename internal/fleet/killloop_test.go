package fleet

import (
	"flag"
	"testing"
)

// -fleet.seeds widens the kill-loop sweep; CI's cluster-smoke job runs
// 20 under -race, the default keeps `go test ./...` quick.
var fleetSeeds = flag.Int("fleet.seeds", 3, "kill-loop trials to run")

// TestKillLoop is the fleet tier's acceptance gate: a 3-shard cluster
// survives a seeded primary-kill/follower-promotion loop with no
// acknowledged record lost, deterministic routing, and front-door
// rollup merges identical to a single reference summarizer.
func TestKillLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-loop trials are not short")
	}
	for seed := 0; seed < *fleetSeeds; seed++ {
		seed := uint64(seed)
		dir := t.TempDir()
		rep, err := KillLoop(dir, seed, KillLoopConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v (%s)", seed, err, rep)
		}
		if rep.Failovers != rep.Rounds {
			t.Fatalf("seed %d: %d failovers over %d rounds: %s", seed, rep.Failovers, rep.Rounds, rep)
		}
		if rep.Acked == 0 || rep.MergedWindows == 0 {
			t.Fatalf("seed %d: degenerate trial: %s", seed, rep)
		}
		t.Logf("seed %d: %s", seed, rep)
	}
}

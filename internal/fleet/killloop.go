package fleet

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// Seeded kill-loop over a sharded cluster: the fleet tier's
// counterpart of chaos.CrashRestart. One trial stands up N shards —
// each a durable analyzer primary with a live TCP follower — routes a
// seed-chosen record stream across them by the consistent-hash ring,
// acknowledges each record only after its shard's follower holds it
// durably (the semi-sync barrier), then kills a seed-chosen primary
// each round and promotes its follower. The contract checked every
// failover and at the end:
//
//   - no acknowledged record is lost or duplicated across a promotion;
//   - routing is deterministic: an independently built ring agrees on
//     every fabric's owner;
//   - the cluster still answers with shards down, and the front door's
//     cross-shard rollup merge is identical to a single reference
//     summarizer that observed every record (counts and quantiles
//     exactly, heavy hitters exactly because the trial sizes its
//     sketches above the key cardinality).
//
// All randomness comes from forked streams of one seed, so a failing
// trial replays exactly.

// KillLoopConfig shapes a trial. Zero values are seed-chosen or sane
// defaults.
type KillLoopConfig struct {
	// Shards is the cluster width (0 = 3).
	Shards int
	// Rounds is the number of batch+failover cycles (0 = seed-chosen 2..4).
	Rounds int
	// MaxBatch bounds records admitted per round (0 = 48).
	MaxBatch int
	// Fabrics is the distinct fabric-name count routed across the ring
	// (0 = 9).
	Fabrics int
	// AckTimeout bounds each semi-sync wait, including a fresh
	// follower's full catch-up (0 = 15s).
	AckTimeout time.Duration
}

// KillLoopReport summarizes one trial.
type KillLoopReport struct {
	Shards, Rounds int
	// Acked counts records whose follower acknowledgement returned —
	// the set the failover contract protects.
	Acked int
	// Failovers counts follower promotions.
	Failovers int
	// Snapshots counts snapshots shipped to followers mid-stream.
	Snapshots uint64
	// Resyncs counts replication sessions torn and re-established.
	Resyncs uint64
	// MergedWindows counts rollup windows the front door merged and
	// verified against the reference summarizer.
	MergedWindows int
}

func (r KillLoopReport) String() string {
	return fmt.Sprintf("killloop: shards=%d rounds=%d acked=%d failovers=%d snapshots=%d resyncs=%d windows=%d",
		r.Shards, r.Rounds, r.Acked, r.Failovers, r.Snapshots, r.Resyncs, r.MergedWindows)
}

// liveShard is one shard's current primary + follower pair.
type liveShard struct {
	name string
	srv  *analyzd.Server
	fl   *Follower
	gen  int // follower directory generation
	// acked is the per-shard exactly-once ledger: victim -> seq.
	acked map[string]uint64
}

// killLoopStoreCfg sizes shard stores: synchronous WAL (Add's return
// is the durability barrier), retention far above the trial's volume
// (eviction is legitimate forgetting and would blunt the exactly-once
// check), snapshots only when the trial ships one deliberately.
func killLoopStoreCfg() fleetstore.Config {
	return fleetstore.Config{
		Shards:        4,
		ShardCapacity: 1 << 14,
		ResolvedKeep:  1 << 14,
		SnapshotEvery: 1 << 30,
		SegmentBytes:  2048,
		GroupWindow:   -1,
	}
}

// killLoopRollupCfg sizes summarizers so the trial's sketches are
// exact: TopK above the worst-case per-pane key cardinality and enough
// quantile buckets that nothing collapses — making "merged equals
// single-store" an equality check, not a tolerance check.
func killLoopRollupCfg() rollup.Config {
	return rollup.Config{
		Pane:         sim.Millisecond,
		MaxPanes:     256,
		MaxOpenPanes: 16,
		TopK:         64,
		Gamma:        1.05,
		MaxBuckets:   512,
		MaxPaneBytes: 1 << 20,
		UpdateEvery:  1 << 20,
	}
}

// KillLoop runs one seeded trial in dir. It returns an error
// describing the first contract violation.
func KillLoop(dir string, seed uint64, cfg KillLoopConfig) (KillLoopReport, error) {
	root := sim.NewRand(seed ^ 0xF1EE7F1EE7F1EE75)
	rngBatch := root.Fork()
	rngRec := root.Fork()
	rngKill := root.Fork()

	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2 + rngBatch.Intn(3)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 48
	}
	if cfg.Fabrics <= 0 {
		cfg.Fabrics = 9
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 15 * time.Second
	}

	rep := KillLoopReport{Shards: cfg.Shards, Rounds: cfg.Rounds}

	names := make([]string, cfg.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	ring, err := NewRing(names, 0, seed)
	if err != nil {
		return rep, err
	}
	// An independently built ring must agree on every owner — the
	// routing-determinism contract (a second process routes with its
	// own ring, built only from the membership and the seed).
	checkRing, err := NewRing(append([]string(nil), names...), 0, seed)
	if err != nil {
		return rep, err
	}

	shards := make(map[string]*liveShard, cfg.Shards)
	defer func() {
		for _, sh := range shards {
			if sh.fl != nil {
				sh.fl.Stop()
			}
			if sh.srv != nil {
				sh.srv.Close()
			}
		}
	}()

	primaryDir := func(name string, gen int) string {
		return filepath.Join(dir, name, fmt.Sprintf("gen-%03d", gen))
	}
	startPrimary := func(name string, gen int, promote bool) (*analyzd.Server, error) {
		return analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
			DataDir:   primaryDir(name, gen),
			Shard:     name,
			Fleet:     killLoopStoreCfg(),
			Rollup:    killLoopRollupCfg(),
			BumpEpoch: promote,
		})
	}
	for _, name := range names {
		srv, err := startPrimary(name, 0, false)
		if err != nil {
			return rep, fmt.Errorf("shard %s: %w", name, err)
		}
		fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: primaryDir(name, 1)})
		if err != nil {
			srv.Close()
			return rep, fmt.Errorf("shard %s follower: %w", name, err)
		}
		shards[name] = &liveShard{name: name, srv: srv, fl: fl, gen: 1, acked: make(map[string]uint64)}
	}

	// The reference summarizer observes every record the cluster admits
	// — the single-store ground truth the merged rollups must equal.
	reference := rollup.New(killLoopRollupCfg())

	var at sim.Time
	recIdx := 0
	scores := []float64{0.25, 0.5, 0.75, 0.95}
	types := []diagnosis.AnomalyType{
		diagnosis.TypeNormalContention,
		diagnosis.TypePFCContention,
		diagnosis.TypePFCStorm,
	}

	for round := 0; round < cfg.Rounds; round++ {
		batch := 1 + rngBatch.Intn(cfg.MaxBatch)
		maxSeq := make(map[string]uint64, cfg.Shards)
		for i := 0; i < batch; i++ {
			fabric := fmt.Sprintf("fab%02d", rngRec.Intn(cfg.Fabrics))
			owner := ring.Owner(fabric)
			if got := checkRing.Owner(fabric); got != owner {
				return rep, fmt.Errorf("round %d: rings disagree on %s: %s vs %s", round, fabric, owner, got)
			}
			at += sim.Time(20+rngRec.Intn(60)) * sim.Microsecond
			rec := fleetstore.Record{
				Fabric:  fabric,
				At:      at,
				Victim:  fmt.Sprintf("v%06d", recIdx),
				Type:    types[rngRec.Intn(len(types))],
				Node:    topo.NodeID(rngRec.Intn(3)),
				Port:    rngRec.Intn(2),
				Score:   scores[rngRec.Intn(len(scores))],
				StallNS: int64(1 + rngRec.Intn(1_000_000)),
			}
			recIdx++
			sh := shards[owner]
			got := sh.srv.Fleet().Add(rec)
			reference.ObserveRecord(&got)
			sh.acked[rec.Victim] = got.Seq
			if got.Seq > maxSeq[owner] {
				maxSeq[owner] = got.Seq
			}
		}
		// Semi-sync barrier: the follower's watermark is contiguous, so
		// reaching the shard's max sequence acknowledges the whole batch.
		for name, seq := range maxSeq {
			if err := shards[name].fl.WaitForSeq(seq, cfg.AckTimeout); err != nil {
				return rep, fmt.Errorf("round %d: %w", round, err)
			}
		}
		rep.Acked += batch

		// Occasionally checkpoint a surviving primary: the snapshot
		// ships to its follower mid-stream and the next promotion
		// recovers through snapshot + delta instead of pure replay.
		if rngKill.Intn(2) == 0 {
			name := names[rngKill.Intn(len(names))]
			if err := shards[name].srv.Fleet().Checkpoint(); err != nil {
				return rep, fmt.Errorf("round %d: checkpoint %s: %w", round, name, err)
			}
		}

		// Kill one seed-chosen primary — no flush, no goodbye — and
		// promote its follower into a new primary.
		name := names[rngKill.Intn(len(names))]
		sh := shards[name]
		sh.srv.Fleet().Abort()
		sh.srv.Close()
		if err := sh.fl.Stop(); err != nil {
			return rep, fmt.Errorf("round %d: stop follower %s: %w", round, name, err)
		}
		rep.Snapshots += sh.fl.Snapshots()
		rep.Resyncs += sh.fl.Resyncs()
		srv, err := startPrimary(name, sh.gen, true)
		if err != nil {
			return rep, fmt.Errorf("round %d: promote %s: %w", round, name, err)
		}
		rep.Failovers++
		// The promoted store must hold exactly the acknowledged set.
		if err := checkAckedSet(srv.Fleet(), sh.acked); err != nil {
			srv.Close()
			return rep, fmt.Errorf("round %d: shard %s after failover: %w", round, name, err)
		}
		sh.gen++
		fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: primaryDir(name, sh.gen)})
		if err != nil {
			srv.Close()
			return rep, fmt.Errorf("round %d: new follower %s: %w", round, name, err)
		}
		sh.srv, sh.fl = srv, fl
	}

	// Final: every shard holds exactly its acknowledged set.
	for _, name := range names {
		if err := checkAckedSet(shards[name].srv.Fleet(), shards[name].acked); err != nil {
			return rep, fmt.Errorf("final: shard %s: %w", name, err)
		}
	}

	for _, name := range names {
		rep.Snapshots += shards[name].fl.Snapshots()
		rep.Resyncs += shards[name].fl.Resyncs()
	}

	// Front door across the survivors: merged incidents in
	// deterministic order, merged rollups equal to the reference.
	specs := make([]ShardSpec, 0, cfg.Shards)
	for _, name := range names {
		specs = append(specs, ShardSpec{Name: name, Addr: shards[name].srv.Addr()})
	}
	fd, err := NewFrontdoor(specs, 0, seed)
	if err != nil {
		return rep, err
	}
	defer fd.Close()

	incs, shardErrs, err := fd.QueryIncidents(wire.IncidentQuery{Node: -1})
	if err != nil {
		return rep, fmt.Errorf("final: cluster incidents: %w", err)
	}
	if len(shardErrs) != 0 {
		return rep, fmt.Errorf("final: cluster incidents: shard errors %v", shardErrs)
	}
	for i := 1; i < len(incs); i++ {
		if incs[i-1].FirstNS > incs[i].FirstNS {
			return rep, fmt.Errorf("final: merged incidents out of order at %d", i)
		}
	}

	res, shardErrs, err := fd.QueryRollups(wire.RollupQuery{})
	if err != nil {
		return rep, fmt.Errorf("final: cluster rollups: %w", err)
	}
	if len(shardErrs) != 0 {
		return rep, fmt.Errorf("final: cluster rollups: shard errors %v", shardErrs)
	}
	refPanes := reference.Query(rollup.QueryOpts{}).Panes
	if err := compareRollups(res.Windows, refPanes); err != nil {
		return rep, fmt.Errorf("final: %w", err)
	}
	rep.MergedWindows = len(res.Windows)
	return rep, nil
}

// checkAckedSet verifies the exactly-once contract on one shard: each
// acknowledged record present once with its acked sequence, nothing
// unacknowledged leaked in.
func checkAckedSet(st *fleetstore.Store, acked map[string]uint64) error {
	recs := st.Records(fleetstore.Query{Node: fleetstore.AnyNode})
	count := make(map[string]int, len(recs))
	for i := range recs {
		rec := &recs[i]
		count[rec.Victim]++
		wantSeq, ok := acked[rec.Victim]
		if !ok {
			return fmt.Errorf("unacknowledged record %q survived the failover", rec.Victim)
		}
		if rec.Seq != wantSeq {
			return fmt.Errorf("record %q recovered with seq %d, acked as %d", rec.Victim, rec.Seq, wantSeq)
		}
	}
	if len(count) != len(acked) {
		var missing []string
		for v := range acked {
			if count[v] == 0 {
				missing = append(missing, v)
			}
		}
		sort.Strings(missing)
		if len(missing) > 3 {
			missing = missing[:3]
		}
		return fmt.Errorf("lost %d acknowledged records (e.g. %q)", len(acked)-len(count), missing)
	}
	for v, n := range count {
		if n != 1 {
			return fmt.Errorf("record %q present %d times", v, n)
		}
	}
	return nil
}

// compareRollups checks the merged cluster windows against the
// reference summarizer's panes: same spans, exact counts and attribute
// maps, exact quantile renders, exact heavy hitters (the trial sizes
// sketches above the key cardinality, so merging loses nothing).
func compareRollups(merged []wire.RollupSummary, ref []rollup.Summary) error {
	refByStart := make(map[int64]*rollup.Summary, len(ref))
	for i := range ref {
		refByStart[int64(ref[i].Start)] = &ref[i]
	}
	if len(merged) != len(ref) {
		return fmt.Errorf("merged %d rollup windows, reference has %d", len(merged), len(ref))
	}
	for i := range merged {
		mw := &merged[i]
		rw := refByStart[mw.StartNS]
		if rw == nil {
			return fmt.Errorf("merged window at %d not in reference", mw.StartNS)
		}
		if mw.EndNS != int64(rw.End) {
			return fmt.Errorf("window at %d: span end %d vs reference %d", mw.StartNS, mw.EndNS, int64(rw.End))
		}
		if mw.Records != rw.Records {
			return fmt.Errorf("window at %d: %d records vs reference %d", mw.StartNS, mw.Records, rw.Records)
		}
		if err := equalCounts("type", mw.ByType, rw.ByType); err != nil {
			return fmt.Errorf("window at %d: %w", mw.StartNS, err)
		}
		if err := equalCounts("cause", mw.ByCause, rw.ByCause); err != nil {
			return fmt.Errorf("window at %d: %w", mw.StartNS, err)
		}
		if err := equalQuantiles("stall", mw.StallNS, rw.StallNS); err != nil {
			return fmt.Errorf("window at %d: %w", mw.StartNS, err)
		}
		if err := equalQuantiles("score", mw.Score, rw.Score); err != nil {
			return fmt.Errorf("window at %d: %w", mw.StartNS, err)
		}
		for _, level := range rollup.Levels {
			want := make(map[string]uint64, len(rw.TopLevels[level]))
			for _, h := range rw.TopLevels[level] {
				want[h.Key] = h.Count
			}
			got := make(map[string]uint64, len(mw.Top[level]))
			for _, h := range mw.Top[level] {
				got[h.Key] = h.Count
			}
			if len(got) != len(want) {
				return fmt.Errorf("window at %d level %s: %d hitters vs reference %d",
					mw.StartNS, level, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					return fmt.Errorf("window at %d level %s: key %s count %d vs reference %d",
						mw.StartNS, level, k, got[k], n)
				}
			}
		}
	}
	return nil
}

func equalCounts(what string, got, want map[string]uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s counts differ: %v vs reference %v", what, got, want)
	}
	for k, n := range want {
		if got[k] != n {
			return fmt.Errorf("%s[%s] = %d vs reference %d", what, k, got[k], n)
		}
	}
	return nil
}

func equalQuantiles(what string, got wire.RollupQuantiles, want rollup.Quantiles) error {
	if got.Count != want.Count {
		return fmt.Errorf("%s count %d vs reference %d", what, got.Count, want.Count)
	}
	for _, pair := range [][2]float64{{got.P50, want.P50}, {got.P90, want.P90}, {got.P99, want.P99}, {got.Max, want.Max}} {
		if math.Abs(pair[0]-pair[1]) > 1e-9*math.Max(1, math.Abs(pair[1])) {
			return fmt.Errorf("%s quantiles %+v vs reference %+v", what, got, want)
		}
	}
	return nil
}

// cleanTrialDir resets a kill-loop directory between seeds.
func cleanTrialDir(dir string) error {
	return os.RemoveAll(dir)
}

package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// Seeded partition + reshard chaos loop: KillLoop's harder sibling.
// Where KillLoop drives stores directly and only kills primaries, this
// trial pushes every record through the resilient writer router over
// TCP, and each round
//
//  1. ingests a batch via fleet.Writer (semi-sync acks: a record is
//     acked only after the shard's follower holds it durably);
//  2. once per trial, runs a live reshard mid-batch — the executor
//     freezes, copies, and cuts each planned fabric over to a new ring
//     while the writer keeps ingesting around it;
//  3. kills a seed-chosen primary, promotes its follower (epoch bump),
//     and repoints the writer and front door;
//  4. revives the dead primary from its old directory behind a
//     "partition" (a listener nobody routes to) and probes it: one
//     epoch announce must demote it, and every subsequent write must be
//     refused with the typed fencing error — zero post-fence acks;
//  5. attaches a fresh follower to the promoted primary and waits for
//     full catch-up (sequence and epoch) before the next kill.
//
// The final contract: every shard holds exactly the acked victims its
// FINAL ring position owns (exactly-once across failovers and the
// reshard), merged front-door rollups equal a single reference
// summarizer that observed every acked record, and merged incidents
// come out ordered. All randomness forks from one seed.

// ReshardLoopConfig shapes a trial. Zero values are seed-chosen or
// sane defaults.
type ReshardLoopConfig struct {
	// Shards is the cluster width (0 = 3).
	Shards int
	// Rounds is the number of batch+failover cycles (0 = seed-chosen
	// 2..4). The reshard runs in round Rounds/2.
	Rounds int
	// MaxBatch bounds records ingested per round (0 = 32).
	MaxBatch int
	// Fabrics is the distinct fabric-name count routed across the ring
	// (0 = 9).
	Fabrics int
	// AckTimeout bounds each catch-up wait and the writer's freeze hold
	// (0 = 20s).
	AckTimeout time.Duration
	// SemiSync is the per-write follower-ack bound (0 = 10s).
	SemiSync time.Duration
}

// ReshardLoopReport summarizes one trial.
type ReshardLoopReport struct {
	Shards, Rounds int
	// Acked counts writer-acked records — the exactly-once set.
	Acked int
	// Duplicates counts acks the dedup watermark classified as resends.
	Duplicates int
	// Failovers counts follower promotions; StaleFenced the write
	// refusals collected from revived stale primaries.
	Failovers   int
	StaleFenced int
	// Moves/Copied count the reshard's fabric migrations and shipped
	// records.
	Moves  int
	Copied int
	// Reroutes counts writer re-resolutions after fencing/moved
	// refusals.
	Reroutes uint64
	// MergedWindows counts rollup windows verified against the
	// reference.
	MergedWindows int
}

func (r ReshardLoopReport) String() string {
	return fmt.Sprintf("reshardloop: shards=%d rounds=%d acked=%d dup=%d failovers=%d fenced=%d moves=%d copied=%d reroutes=%d windows=%d",
		r.Shards, r.Rounds, r.Acked, r.Duplicates, r.Failovers, r.StaleFenced, r.Moves, r.Copied, r.Reroutes, r.MergedWindows)
}

// ReshardLoop runs one seeded trial in dir. It returns an error
// describing the first contract violation.
func ReshardLoop(dir string, seed uint64, cfg ReshardLoopConfig) (ReshardLoopReport, error) {
	root := sim.NewRand(seed ^ 0x5E5A4DD00F157EE7)
	rngBatch := root.Fork()
	rngRec := root.Fork()
	rngKill := root.Fork()

	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2 + rngBatch.Intn(3)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.Fabrics <= 0 {
		cfg.Fabrics = 9
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 20 * time.Second
	}
	if cfg.SemiSync <= 0 {
		cfg.SemiSync = 10 * time.Second
	}

	rep := ReshardLoopReport{Shards: cfg.Shards, Rounds: cfg.Rounds}

	names := make([]string, cfg.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	fabNames := make([]string, cfg.Fabrics)
	for i := range fabNames {
		fabNames[i] = fmt.Sprintf("fab%02d", i)
	}
	oldRing, err := NewRing(names, 0, seed)
	if err != nil {
		return rep, err
	}

	retry := analyzd.RetryConfig{
		MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond, JitterFrac: 0.2, Seed: seed,
	}

	shards := make(map[string]*liveShard, cfg.Shards)
	defer func() {
		for _, sh := range shards {
			if sh.fl != nil {
				sh.fl.Stop()
			}
			if sh.srv != nil {
				sh.srv.Close()
			}
		}
	}()

	primaryDir := func(name string, gen int) string {
		return filepath.Join(dir, name, fmt.Sprintf("gen-%03d", gen))
	}
	startPrimary := func(name string, gen int, promote bool) (*analyzd.Server, error) {
		return analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
			DataDir:   primaryDir(name, gen),
			Shard:     name,
			Fleet:     killLoopStoreCfg(),
			Rollup:    killLoopRollupCfg(),
			BumpEpoch: promote,
			SemiSync:  cfg.SemiSync,
		})
	}
	// waitEpochMirror blocks until the follower has durably mirrored
	// the primary's fencing epoch — the precondition for a promotion
	// bump to actually supersede the dead primary. WaitForSeq cannot
	// stand in for it: a shard holding no records makes that wait
	// vacuous before the stream's epoch announce lands.
	waitEpochMirror := func(fl *Follower, srv *analyzd.Server) error {
		deadline := time.Now().Add(cfg.AckTimeout)
		for fl.Epoch() != srv.Fleet().Epoch() {
			if time.Now().After(deadline) {
				return fmt.Errorf("follower mirrored epoch %d, primary at %d", fl.Epoch(), srv.Fleet().Epoch())
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	for _, name := range names {
		srv, err := startPrimary(name, 0, false)
		if err != nil {
			return rep, fmt.Errorf("shard %s: %w", name, err)
		}
		fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: primaryDir(name, 1)})
		if err != nil {
			srv.Close()
			return rep, fmt.Errorf("shard %s follower: %w", name, err)
		}
		shards[name] = &liveShard{name: name, srv: srv, fl: fl, gen: 1}
		if err := waitEpochMirror(fl, srv); err != nil {
			return rep, fmt.Errorf("shard %s: %w", name, err)
		}
	}

	specs := make([]ShardSpec, cfg.Shards)
	for i, name := range names {
		specs[i] = ShardSpec{Name: name, Addr: shards[name].srv.Addr()}
	}
	writer, err := NewWriter(WriterConfig{
		Specs: specs, Seed: seed, Retry: retry,
		MaxAttempts: 24, FreezeWait: cfg.AckTimeout,
	})
	if err != nil {
		return rep, err
	}
	defer writer.Close()
	fd, err := NewFrontdoor(specs, 0, seed)
	if err != nil {
		return rep, err
	}
	defer fd.Close()

	// The reference summarizer observes every writer-acked record in
	// trigger-time order — the single-store ground truth the merged
	// cluster rollups must equal, no matter how many promotions and
	// migrations the records lived through.
	reference := rollup.New(killLoopRollupCfg())

	ackedByFabric := make(map[string]map[string]struct{}, cfg.Fabrics)
	var at sim.Time
	recIdx := 0
	scores := []float64{0.25, 0.5, 0.75, 0.95}
	types := []diagnosis.AnomalyType{
		diagnosis.TypeNormalContention,
		diagnosis.TypePFCContention,
		diagnosis.TypePFCStorm,
	}
	makeRec := func(fabric string) fleetstore.Record {
		at += sim.Time(20+rngRec.Intn(60)) * sim.Microsecond
		rec := fleetstore.Record{
			Fabric:  fabric,
			At:      at,
			Victim:  fmt.Sprintf("v%06d", recIdx),
			Type:    types[rngRec.Intn(len(types))],
			Node:    topo.NodeID(rngRec.Intn(3)),
			Port:    rngRec.Intn(2),
			Score:   scores[rngRec.Intn(len(scores))],
			StallNS: int64(1 + rngRec.Intn(1_000_000)),
		}
		recIdx++
		return rec
	}
	writeOne := func() error {
		fabric := fabNames[rngRec.Intn(cfg.Fabrics)]
		rec := makeRec(fabric)
		ack, err := writer.Write(fabric, rec)
		if err != nil {
			return fmt.Errorf("write %s/%s: %w", fabric, rec.Victim, err)
		}
		if ack.Duplicate {
			rep.Duplicates++
		}
		reference.ObserveRecord(&rec)
		set := ackedByFabric[fabric]
		if set == nil {
			set = make(map[string]struct{})
			ackedByFabric[fabric] = set
		}
		set[rec.Victim] = struct{}{}
		rep.Acked++
		return nil
	}

	reshardRound := cfg.Rounds / 2
	var nextRing *Ring // non-nil once the reshard has landed

	for round := 0; round < cfg.Rounds; round++ {
		batch := 1 + rngBatch.Intn(cfg.MaxBatch)
		inBatch := func(n int) error {
			for i := 0; i < n; i++ {
				if err := writeOne(); err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
			}
			return nil
		}
		if round != reshardRound || nextRing != nil {
			if err := inBatch(batch); err != nil {
				return rep, err
			}
		} else {
			// Live reshard, concurrent with ingest: write half the batch,
			// start the executor, keep writing while it migrates. Writes to
			// a frozen fabric hold until its cutover; everything else keeps
			// flowing — the ingest-continuity claim under test.
			if err := inBatch(batch / 2); err != nil {
				return rep, err
			}
			nr, moves := replanRing(names, fabNames, oldRing, seed)
			if len(moves) == 0 {
				return rep, fmt.Errorf("round %d: no reshard plan found", round)
			}
			rs := NewReshardState(oldRing, nr, moves)
			writer.SetReshard(rs)
			fd.SetReshard(rs)
			curSpecs := make([]ShardSpec, 0, cfg.Shards)
			for _, name := range names {
				curSpecs = append(curSpecs, ShardSpec{Name: name, Addr: shards[name].srv.Addr()})
			}
			ex, err := NewExecutor(curSpecs, retry)
			if err != nil {
				return rep, err
			}
			type exDone struct {
				rep *ReshardReport
				err error
			}
			done := make(chan exDone, 1)
			go func() {
				r, err := ex.Execute(rs)
				done <- exDone{r, err}
			}()
			ingestErr := inBatch(batch - batch/2)
			res := <-done
			ex.Close()
			if ingestErr != nil {
				return rep, ingestErr
			}
			if res.err != nil {
				return rep, fmt.Errorf("round %d: %w", round, res.err)
			}
			if !rs.Done() {
				return rep, fmt.Errorf("round %d: reshard reported success with moves pending", round)
			}
			writer.FinishReshard()
			fd.FinishReshard()
			nextRing = nr
			rep.Moves = len(moves)
			for _, mr := range res.rep.Moves {
				rep.Copied += mr.Copied
			}
			// Front-door routing must already follow the migrated ring: a
			// fabric-scoped query for a moved fabric answers without shard
			// errors.
			if _, errs, err := fd.QueryIncidents(wire.IncidentQuery{Fabric: moves[0].Fabric, Node: -1}); err != nil || len(errs) != 0 {
				return rep, fmt.Errorf("round %d: post-reshard query on %s: err=%v shardErrs=%v",
					round, moves[0].Fabric, err, errs)
			}
		}

		// Occasionally checkpoint a survivor so later promotions recover
		// through snapshot + delta instead of pure replay.
		if rngKill.Intn(2) == 0 {
			name := names[rngKill.Intn(len(names))]
			if err := shards[name].srv.Fleet().Checkpoint(); err != nil {
				return rep, fmt.Errorf("round %d: checkpoint %s: %w", round, name, err)
			}
		}

		// Kill one primary — no flush, no goodbye — and promote its
		// follower with an epoch bump.
		name := names[rngKill.Intn(len(names))]
		sh := shards[name]
		staleGen := sh.gen - 1
		sh.srv.Fleet().Abort()
		sh.srv.Close()
		if err := sh.fl.Stop(); err != nil {
			return rep, fmt.Errorf("round %d: stop follower %s: %w", round, name, err)
		}
		srv, err := startPrimary(name, sh.gen, true)
		if err != nil {
			return rep, fmt.Errorf("round %d: promote %s: %w", round, name, err)
		}
		rep.Failovers++
		spec := ShardSpec{Name: name, Addr: srv.Addr()}
		if err := writer.Update(spec); err != nil {
			srv.Close()
			return rep, err
		}
		if err := fd.Update(spec); err != nil {
			srv.Close()
			return rep, err
		}
		sh.srv = srv
		sh.fl = nil

		// Revive the dead primary from its old directory behind a
		// partition: a fresh listener the writer and front door never
		// learn about. One epoch announce must demote it; after that,
		// zero acks, ever.
		if err := probeStalePrimary(name, primaryDir(name, staleGen), srv.Fleet().Epoch(), retry, &rep, func(gen int) (*analyzd.Server, error) {
			return startPrimary(name, gen, false)
		}, staleGen); err != nil {
			return rep, fmt.Errorf("round %d: %w", round, err)
		}

		// Fresh follower, full catch-up — sequence and epoch — before
		// anything else can die.
		sh.gen++
		fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: primaryDir(name, sh.gen)})
		if err != nil {
			return rep, fmt.Errorf("round %d: new follower %s: %w", round, name, err)
		}
		sh.fl = fl
		if err := fl.WaitForSeq(srv.Fleet().Seq(), cfg.AckTimeout); err != nil {
			return rep, fmt.Errorf("round %d: follower catch-up %s: %w", round, name, err)
		}
		if err := waitEpochMirror(fl, srv); err != nil {
			return rep, fmt.Errorf("round %d: shard %s: %w", round, name, err)
		}
	}

	// Final: every shard holds exactly the acked victims its final ring
	// position owns — exactly once, across every promotion and the
	// migration.
	finalRing := oldRing
	if nextRing != nil {
		finalRing = nextRing
	}
	expected := make(map[string]map[string]struct{}, cfg.Shards)
	for _, name := range names {
		expected[name] = make(map[string]struct{})
	}
	for fabric, victims := range ackedByFabric {
		owner := finalRing.Owner(fabric)
		for v := range victims {
			expected[owner][v] = struct{}{}
		}
	}
	for _, name := range names {
		if err := checkVictimSet(shards[name].srv.Fleet(), expected[name]); err != nil {
			return rep, fmt.Errorf("final: shard %s: %w", name, err)
		}
	}

	// Cluster health: nobody fenced, every follower's mirrored epoch
	// agrees with its primary.
	for _, st := range fd.Health() {
		if st.Err != nil {
			return rep, fmt.Errorf("final: health %s: %w", st.Spec.Name, st.Err)
		}
		if st.Info.Fenced {
			return rep, fmt.Errorf("final: shard %s fenced", st.Spec.Name)
		}
		if st.Info.Replicas > 0 && st.Info.FollowerEpoch != st.Info.Epoch {
			return rep, fmt.Errorf("final: shard %s epoch %d, follower mirrored %d",
				st.Spec.Name, st.Info.Epoch, st.Info.FollowerEpoch)
		}
	}

	// Merged incidents ordered; merged rollups equal the reference.
	incs, shardErrs, err := fd.QueryIncidents(wire.IncidentQuery{Node: -1})
	if err != nil {
		return rep, fmt.Errorf("final: cluster incidents: %w", err)
	}
	if len(shardErrs) != 0 {
		return rep, fmt.Errorf("final: cluster incidents: shard errors %v", shardErrs)
	}
	for i := 1; i < len(incs); i++ {
		if incs[i-1].FirstNS > incs[i].FirstNS {
			return rep, fmt.Errorf("final: merged incidents out of order at %d", i)
		}
	}
	res, shardErrs, err := fd.QueryRollups(wire.RollupQuery{})
	if err != nil {
		return rep, fmt.Errorf("final: cluster rollups: %w", err)
	}
	if len(shardErrs) != 0 {
		return rep, fmt.Errorf("final: cluster rollups: shard errors %v", shardErrs)
	}
	if err := compareRollups(res.Windows, reference.Query(rollup.QueryOpts{}).Panes); err != nil {
		return rep, fmt.Errorf("final: %w", err)
	}
	rep.MergedWindows = len(res.Windows)
	rep.Reroutes = writer.Reroutes.Load()
	return rep, nil
}

// replanRing searches nearby layout seeds for a next ring whose plan
// against the current one actually moves fabrics. Same membership,
// different layout — a rebalance, the smallest honest reshard.
func replanRing(names, fabrics []string, old *Ring, seed uint64) (*Ring, []Move) {
	for bump := uint64(1); bump <= 16; bump++ {
		nr, err := NewRing(append([]string(nil), names...), 0, seed+bump)
		if err != nil {
			continue
		}
		if moves := Plan(old, nr, fabrics); len(moves) > 0 {
			return nr, moves
		}
	}
	return nil, nil
}

// probeStalePrimary revives a killed primary from its old directory on
// a fresh listener and verifies the fencing contract: its recovered
// epoch is behind the promoted one, a single epoch announce demotes it
// durably, and every write after that is refused with the typed
// fencing error — the zero-post-fence-acks invariant.
func probeStalePrimary(name, dir string, promotedEpoch uint64, retry analyzd.RetryConfig,
	rep *ReshardLoopReport, start func(gen int) (*analyzd.Server, error), staleGen int) error {
	stale, err := start(staleGen)
	if err != nil {
		return fmt.Errorf("revive stale %s: %w", name, err)
	}
	defer stale.Close()
	if se := stale.Fleet().Epoch(); se >= promotedEpoch {
		return fmt.Errorf("stale %s revived with epoch %d, promotion only reached %d", name, se, promotedEpoch)
	}
	probe, err := analyzd.DialOperatorRetry(stale.Addr(), retry)
	if err != nil {
		return fmt.Errorf("dial stale %s: %w", name, err)
	}
	defer probe.Close()
	info, err := probe.AnnounceEpoch(name, promotedEpoch)
	if err != nil {
		return fmt.Errorf("announce to stale %s: %w", name, err)
	}
	if !info.Fenced || info.Observed != promotedEpoch {
		return fmt.Errorf("stale %s not demoted by announce: %+v", name, *info)
	}
	before := len(stale.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode}))
	for i := 0; i < 2; i++ {
		rec := fleetstore.Record{Fabric: "fence-probe", Victim: fmt.Sprintf("stale-%d", i)}
		body, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		_, werr := probe.WriteRecord(wire.WriteRequest{
			Fabric: "fence-probe", OriginSeq: uint64(i + 1), Record: body,
		})
		if werr == nil {
			return fmt.Errorf("stale %s acked write %d after fencing", name, i)
		}
		if !errors.Is(werr, analyzd.ErrFenced) {
			return fmt.Errorf("stale %s refused write %d without the typed fencing error: %v", name, i, werr)
		}
		rep.StaleFenced++
	}
	if after := len(stale.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode})); after != before {
		return fmt.Errorf("stale %s store grew %d -> %d records post-fence", name, before, after)
	}
	return nil
}

// checkVictimSet verifies one shard holds exactly the expected acked
// victims, each once.
func checkVictimSet(st *fleetstore.Store, want map[string]struct{}) error {
	recs := st.Records(fleetstore.Query{Node: fleetstore.AnyNode})
	count := make(map[string]int, len(recs))
	for i := range recs {
		count[recs[i].Victim]++
	}
	for v, n := range count {
		if n != 1 {
			return fmt.Errorf("record %q present %d times", v, n)
		}
		if _, ok := want[v]; !ok {
			return fmt.Errorf("record %q not acked for this shard (leaked by a failover or the reshard)", v)
		}
	}
	if len(count) != len(want) {
		missing := 0
		var example string
		for v := range want {
			if count[v] == 0 {
				missing++
				if example == "" {
					example = v
				}
			}
		}
		return fmt.Errorf("lost %d acked records (e.g. %q)", missing, example)
	}
	return nil
}

// Package fleet is the horizontal tier over single-shard analyzers:
// a consistent-hash router assigning fabrics to shards, a follower
// that replicates a shard's durable state over the wire and can be
// promoted when the primary dies, and a front door that fans operator
// queries out across the shards and merges the answers (incidents in
// deterministic order, rollup windows by sketch merge).
//
// The unit of placement is the fabric: every diagnosis record carries
// its fabric name, the rollup hierarchy keys are fabric-prefixed, and
// incidents cluster within a fabric's record stream — so pinning each
// fabric to exactly one shard keeps every per-key invariant (sketch
// error bounds, incident exactly-once) local to one shard, and the
// front door's merges never have to reconcile split state.
package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per shard when a Ring is
// built with vnodes <= 0. 128 points per shard keeps the ownership
// imbalance across shards within a few percent for realistic fleet
// sizes while the ring stays small enough to rebuild on every
// membership change.
const DefaultVnodes = 128

// domain separators keep shard points and fabric keys in disjoint hash
// families: a fabric named exactly like a shard must not land exactly
// on that shard's point.
const (
	domainPoint = 'P'
	domainKey   = 'K'
)

// Ring maps fabric names to shard names by consistent hashing: each
// shard contributes vnodes points on a 64-bit ring, a fabric is owned
// by the first point at or clockwise of its own hash. The layout is a
// pure function of (shards, vnodes, seed) — two processes building the
// same ring route identically with no coordination, which is the
// routing-determinism contract the cluster kill-loop asserts.
type Ring struct {
	seed   uint64
	vnodes int
	shards []string
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds a ring over the named shards. Names must be non-empty
// and distinct; order does not matter (the ring sorts them). vnodes <= 0
// uses DefaultVnodes. The seed partitions rings of unrelated clusters:
// the same membership under a different seed is a completely different
// layout.
func NewRing(shards []string, vnodes int, seed uint64) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	names := make([]string, len(shards))
	copy(names, shards)
	sort.Strings(names)
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("fleet: empty shard name")
		}
		if i > 0 && names[i-1] == n {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", n)
		}
	}
	r := &Ring{
		seed:   seed,
		vnodes: vnodes,
		shards: names,
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for _, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(seed, domainPoint, name, uint32(v)),
				shard: name,
			})
		}
	}
	// Shard-name tiebreak on (astronomically unlikely) hash collisions
	// keeps the layout independent of input order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

func ringHash(seed uint64, domain byte, name string, v uint32) uint64 {
	h := fnv.New64a()
	var b [13]byte
	b[0] = domain
	binary.BigEndian.PutUint64(b[1:9], seed)
	binary.BigEndian.PutUint32(b[9:], v)
	h.Write(b[:])
	h.Write([]byte(name))
	return h.Sum64()
}

// Owner returns the shard owning the fabric.
func (r *Ring) Owner(fabric string) string {
	h := ringHash(r.seed, domainKey, fabric, 0)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the highest point, ownership circles to the first
	}
	return r.points[i].shard
}

// Shards returns the membership, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Seed returns the ring's layout seed.
func (r *Ring) Seed() uint64 { return r.seed }

// Move is one fabric's reassignment in a reshard plan.
type Move struct {
	Fabric   string
	From, To string
}

// Plan diffs fabric ownership between two rings and returns the
// explicit reassignments, sorted by fabric. This is how a membership
// change ships: build the next ring, Plan against the current one, and
// migrate exactly the listed fabrics — consistent hashing guarantees
// the plan stays near len(fabrics)/len(shards) for a single
// added or removed shard instead of reshuffling everything.
func Plan(old, next *Ring, fabrics []string) []Move {
	var moves []Move
	for _, f := range fabrics {
		from, to := old.Owner(f), next.Owner(f)
		if from != to {
			moves = append(moves, Move{Fabric: f, From: from, To: to})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].Fabric < moves[j].Fabric })
	return moves
}

package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/wire"
)

// Online reshard: execute a Plan(old, next) against live shards with
// no acked-record loss and no ingest outage beyond a per-fabric
// freeze. The executor runs each move through a small state machine —
//
//	pending → frozen → (copy, release, adopt) → done
//
// — and the ReshardState it mutates is shared with every Writer and
// Frontdoor, so routing follows the migration fabric by fabric: writes
// to a frozen fabric wait, writes and queries to a done fabric go to
// the new owner, and everything else keeps flowing to the old one.

// Move phases. A fabric not in the plan is implicitly done (its owner
// never changes).
const (
	movePending int32 = iota
	moveFrozen
	moveDone
)

// ReshardState is the shared, concurrently-read view of an in-flight
// reshard. Build it from the plan, hand it to the writers and front
// doors (SetReshard), run ExecuteReshard, then swap rings
// (FinishReshard).
type ReshardState struct {
	old  *Ring
	next *Ring

	mu    sync.RWMutex
	phase map[string]int32 // by fabric, for planned moves only
	moves []Move
}

// NewReshardState captures a plan against the ring pair it came from.
func NewReshardState(old, next *Ring, moves []Move) *ReshardState {
	rs := &ReshardState{
		old:   old,
		next:  next,
		phase: make(map[string]int32, len(moves)),
		moves: append([]Move(nil), moves...),
	}
	for _, m := range moves {
		rs.phase[m.Fabric] = movePending
	}
	return rs
}

// Moves returns the plan.
func (rs *ReshardState) Moves() []Move { return append([]Move(nil), rs.moves...) }

// NextRing returns the ring the reshard is migrating toward.
func (rs *ReshardState) NextRing() *Ring { return rs.next }

// Owner resolves a fabric mid-migration: the old owner until the
// fabric's cutover completes, the new owner after.
func (rs *ReshardState) Owner(fabric string) string {
	rs.mu.RLock()
	phase, planned := rs.phase[fabric]
	rs.mu.RUnlock()
	if planned && phase == moveDone {
		return rs.next.Owner(fabric)
	}
	return rs.old.Owner(fabric)
}

// Frozen reports whether the fabric is mid-cutover: writers must hold
// their write until it thaws (done).
func (rs *ReshardState) Frozen(fabric string) bool {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.phase[fabric] == moveFrozen
}

// Done reports whether every planned move has completed.
func (rs *ReshardState) Done() bool {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	for _, p := range rs.phase {
		if p != moveDone {
			return false
		}
	}
	return true
}

func (rs *ReshardState) setPhase(fabric string, p int32) {
	rs.mu.Lock()
	rs.phase[fabric] = p
	rs.mu.Unlock()
}

// MoveReport is one fabric's migration outcome.
type MoveReport struct {
	Move Move
	// Copied counts records shipped to the new owner; Duplicates the
	// copies the new owner's dedup refused (an executor retry overlapped
	// an earlier successful copy); Purged the records the old owner
	// dropped at release.
	Copied     int
	Duplicates int
	Purged     int
	// FromEpoch/ToEpoch are the shards' epochs after their cutover
	// bumps.
	FromEpoch uint64
	ToEpoch   uint64
}

// ReshardReport is the executor's summary.
type ReshardReport struct {
	Moves []MoveReport
}

// Executor runs reshard plans against live shards over the analyzer
// protocol.
type Executor struct {
	specs map[string]ShardSpec
	retry analyzd.RetryConfig

	mu      sync.Mutex
	clients map[string]*analyzd.Client
}

// NewExecutor builds an executor over the cluster's current primary
// addresses.
func NewExecutor(specs []ShardSpec, retry analyzd.RetryConfig) (*Executor, error) {
	ex := &Executor{
		specs:   make(map[string]ShardSpec, len(specs)),
		retry:   retry,
		clients: make(map[string]*analyzd.Client),
	}
	for _, sp := range specs {
		if sp.Name == "" || sp.Addr == "" {
			return nil, fmt.Errorf("fleet: executor shard needs a name and an address")
		}
		ex.specs[sp.Name] = sp
	}
	return ex, nil
}

// Update repoints one shard at a new primary (mid-reshard failover).
func (ex *Executor) Update(spec ShardSpec) {
	ex.mu.Lock()
	ex.specs[spec.Name] = spec
	if c, ok := ex.clients[spec.Name]; ok {
		c.Close()
		delete(ex.clients, spec.Name)
	}
	ex.mu.Unlock()
}

// Close drops every cached shard session.
func (ex *Executor) Close() {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	for name, c := range ex.clients {
		c.Close()
		delete(ex.clients, name)
	}
}

func (ex *Executor) client(name string) (*analyzd.Client, error) {
	ex.mu.Lock()
	spec, ok := ex.specs[name]
	if !ok {
		ex.mu.Unlock()
		return nil, fmt.Errorf("fleet: executor knows no shard %q", name)
	}
	if c, ok := ex.clients[name]; ok {
		ex.mu.Unlock()
		return c, nil
	}
	ex.mu.Unlock()
	c, err := analyzd.DialOperatorRetry(spec.Addr, ex.retry)
	if err != nil {
		return nil, err
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if prev, ok := ex.clients[name]; ok {
		c.Close()
		return prev, nil
	}
	ex.clients[name] = c
	return c, nil
}

func (ex *Executor) drop(name string) {
	ex.mu.Lock()
	if c, ok := ex.clients[name]; ok {
		c.Close()
		delete(ex.clients, name)
	}
	ex.mu.Unlock()
}

// Execute runs every move in the plan, mutating rs as it goes. Moves
// run sequentially — a reshard is a maintenance operation; bounding it
// to one frozen fabric at a time keeps the ingest impact local. On
// error the current fabric is left frozen (writes hold rather than
// land on the wrong owner) and the error reports which move died.
func (ex *Executor) Execute(rs *ReshardState) (*ReshardReport, error) {
	report := &ReshardReport{}
	for _, m := range rs.Moves() {
		mr, err := ex.executeMove(rs, m)
		if err != nil {
			return report, fmt.Errorf("fleet: reshard %s (%s -> %s): %w", m.Fabric, m.From, m.To, err)
		}
		report.Moves = append(report.Moves, *mr)
	}
	return report, nil
}

// executeMove is one fabric's drain → copy → cutover:
//
//  1. freeze: writers hold new writes for the fabric, so the record
//     set at the old owner is final.
//  2. copy: dump the fabric from the old owner and replay it into the
//     new one as writer-routed records — idempotency sequences ride
//     along, so a retried copy dedups instead of duplicating.
//  3. release: the old owner purges the fabric behind a durable
//     tombstone and bumps its epoch.
//  4. adopt: the new owner activates the fabric (tombstone + rollup
//     rebuild) and bumps its epoch.
//  5. done: writers and front doors route the fabric to the new owner
//     and thaw.
func (ex *Executor) executeMove(rs *ReshardState, m Move) (*MoveReport, error) {
	mr := &MoveReport{Move: m}
	rs.setPhase(m.Fabric, moveFrozen)

	from, err := ex.client(m.From)
	if err != nil {
		return mr, fmt.Errorf("dial old owner: %w", err)
	}
	// Seal the fabric at the old owner before dumping: client-side
	// freeze (rs) only stops writers that have this plan; the server-
	// side seal is the barrier that makes the dump final against writes
	// already in flight.
	if _, err := from.Cutover(m.Fabric, wire.CutoverFreeze); err != nil {
		ex.drop(m.From)
		return mr, fmt.Errorf("freeze: %w", err)
	}
	dump, err := from.QueryRecords(m.Fabric, 0)
	if err != nil {
		ex.drop(m.From)
		return mr, fmt.Errorf("dump: %w", err)
	}

	// Decode for the idempotency sequence, then ship in OriginSeq order:
	// the receiving watermark admits only ascending sequences, so an
	// out-of-order copy would be refused as a duplicate. Records that
	// were never writer-routed (OriginSeq 0) have no dedup key and ship
	// first, as plain admissions.
	type copyRec struct {
		raw       json.RawMessage
		originSeq uint64
	}
	recs := make([]copyRec, 0, len(dump))
	for _, raw := range dump {
		var rec fleetstore.Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return mr, fmt.Errorf("decode dumped record: %w", err)
		}
		recs = append(recs, copyRec{raw: raw, originSeq: rec.OriginSeq})
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].originSeq < recs[j].originSeq })

	to, err := ex.client(m.To)
	if err != nil {
		return mr, fmt.Errorf("dial new owner: %w", err)
	}
	for _, cr := range recs {
		ack, err := to.WriteRecord(wire.WriteRequest{
			Fabric:    m.Fabric,
			OriginSeq: cr.originSeq,
			Record:    cr.raw,
		})
		if err != nil {
			ex.drop(m.To)
			return mr, fmt.Errorf("copy: %w", err)
		}
		if ack.Duplicate {
			mr.Duplicates++
		} else {
			mr.Copied++
		}
	}

	rel, err := from.Cutover(m.Fabric, wire.CutoverRelease)
	if err != nil {
		ex.drop(m.From)
		return mr, fmt.Errorf("release: %w", err)
	}
	mr.Purged = rel.Purged
	mr.FromEpoch = rel.Epoch

	adopt, err := to.Cutover(m.Fabric, wire.CutoverAdopt)
	if err != nil {
		ex.drop(m.To)
		return mr, fmt.Errorf("adopt: %w", err)
	}
	mr.ToEpoch = adopt.Epoch

	rs.setPhase(m.Fabric, moveDone)
	return mr, nil
}

// WaitThaw blocks until the fabric is no longer frozen or the timeout
// passes — the hold a writer applies mid-cutover.
func (rs *ReshardState) WaitThaw(fabric string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for rs.Frozen(fabric) {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(500 * time.Microsecond)
	}
	return true
}

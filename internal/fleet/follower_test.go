package fleet

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func testRec(fabric string, i int) fleetstore.Record {
	return fleetstore.Record{
		Fabric:  fabric,
		At:      sim.Time(i+1) * 50 * sim.Microsecond,
		Victim:  fmt.Sprintf("v%04d", i),
		Type:    diagnosis.TypePFCStorm,
		Node:    topo.NodeID(i % 3),
		Port:    i % 2,
		Score:   0.5,
		StallNS: int64(1000 + i),
	}
}

func testShard(t *testing.T, dir, shard string) *analyzd.Server {
	t.Helper()
	srv, err := analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
		DataDir: dir,
		Shard:   shard,
		Fleet:   killLoopStoreCfg(),
		Rollup:  killLoopRollupCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// A follower that joins after the primary checkpointed and compacted
// must bootstrap from the shipped snapshot plus the WAL delta, and a
// promotion from its directory must recover exactly the primary's
// records.
func TestFollowerSnapshotBootstrapAndPromotion(t *testing.T) {
	dir := t.TempDir()
	srv := testShard(t, filepath.Join(dir, "primary"), "s0")
	defer srv.Close()

	var last uint64
	for i := 0; i < 20; i++ {
		last = srv.Fleet().Add(testRec("fabA", i)).Seq
	}
	// Checkpoint + compact: the WAL no longer reaches back to seq 0, so
	// a fresh follower cannot catch up by backlog alone.
	if err := srv.Fleet().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 30; i++ {
		last = srv.Fleet().Add(testRec("fabA", i)).Seq
	}

	fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: filepath.Join(dir, "follower")})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if err := fl.WaitForSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if fl.Snapshots() == 0 {
		t.Fatal("follower caught up without the snapshot the compacted WAL requires")
	}
	if fl.SnapshotSeq() == 0 {
		t.Fatal("snapshot applied but SnapshotSeq not recorded")
	}

	// Live records keep streaming past the bootstrap.
	last = srv.Fleet().Add(testRec("fabA", 30)).Seq
	if err := fl.WaitForSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash the primary, promote the follower, and check exactly-once.
	srv.Fleet().Abort()
	srv.Close()
	st, err := fl.Promote(killLoopStoreCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := st.Records(fleetstore.Query{Node: fleetstore.AnyNode})
	if len(recs) != 31 {
		t.Fatalf("promoted store has %d records, want 31", len(recs))
	}
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.Victim] {
			t.Fatalf("victim %s recovered twice", r.Victim)
		}
		seen[r.Victim] = true
	}
	if st.Seq() != last {
		t.Fatalf("promoted store at seq %d, want %d", st.Seq(), last)
	}
}

// A primary restart severs the replication session; the follower must
// re-sync from its durable watermark and the overlap re-sent by the
// backlog must not duplicate anything.
func TestFollowerReconnectWithoutDuplicates(t *testing.T) {
	dir := t.TempDir()
	primaryDir := filepath.Join(dir, "primary")
	srv := testShard(t, primaryDir, "s0")
	addr := srv.Addr()

	var last uint64
	for i := 0; i < 12; i++ {
		last = srv.Fleet().Add(testRec("fabB", i)).Seq
	}

	fl, err := StartFollower(FollowerConfig{Addr: addr, Dir: filepath.Join(dir, "follower")})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Stop()
	if err := fl.WaitForSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Clean restart of the primary on the same address: the follower's
	// session dies and its reconnect loop must re-establish replication.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := analyzd.ListenOpts(addr, analyzd.Options{
		DataDir: primaryDir,
		Shard:   "s0",
		Fleet:   killLoopStoreCfg(),
		Rollup:  killLoopRollupCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	for i := 12; i < 24; i++ {
		last = srv2.Fleet().Add(testRec("fabB", i)).Seq
	}
	if err := fl.WaitForSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if fl.Resyncs() == 0 {
		t.Fatal("follower never re-synced across the primary restart")
	}

	srv2.Fleet().Abort()
	srv2.Close()
	st, err := fl.Promote(killLoopStoreCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := st.Records(fleetstore.Query{Node: fleetstore.AnyNode})
	if len(recs) != 24 {
		t.Fatalf("promoted store has %d records, want 24", len(recs))
	}
	count := make(map[string]int, len(recs))
	for _, r := range recs {
		count[r.Victim]++
	}
	for v, n := range count {
		if n != 1 {
			t.Fatalf("victim %s recovered %d times after re-sync", v, n)
		}
	}
}

// TestDoubleFailoverChain: a promoted follower immediately gains a new
// follower, which must re-sync from the snapshot-bootstrapped
// watermark — and survive a second promotion with no duplicate or
// missing record and a strictly increasing epoch at every hop.
func TestDoubleFailoverChain(t *testing.T) {
	dir := t.TempDir()
	gen := func(i int) string { return filepath.Join(dir, fmt.Sprintf("gen%d", i)) }
	promote := func(genDir string) *analyzd.Server {
		t.Helper()
		srv, err := analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
			DataDir: genDir, Shard: "s0",
			Fleet: killLoopStoreCfg(), Rollup: killLoopRollupCfg(), BumpEpoch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv := testShard(t, gen(0), "s0")
	defer func() { srv.Close() }()
	epoch0 := srv.Fleet().Epoch()

	fl, err := StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: gen(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { fl.Stop() }()

	var last uint64
	for i := 0; i < 15; i++ {
		last = srv.Fleet().Add(testRec("fabC", i)).Seq
	}
	if err := fl.WaitForSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// First failover.
	srv.Fleet().Abort()
	srv.Close()
	if err := fl.Stop(); err != nil {
		t.Fatal(err)
	}
	srv = promote(gen(1))
	epoch1 := srv.Fleet().Epoch()
	if epoch1 <= epoch0 {
		t.Fatalf("first promotion epoch %d not past %d", epoch1, epoch0)
	}
	// Checkpoint + compact so the chained follower cannot catch up by
	// backlog alone: it must bootstrap from the promoted store's
	// snapshot, then track the delta.
	if err := srv.Fleet().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 15; i < 25; i++ {
		last = srv.Fleet().Add(testRec("fabC", i)).Seq
	}
	fl, err = StartFollower(FollowerConfig{Addr: srv.Addr(), Dir: gen(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.WaitForSeq(last, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if fl.Snapshots() == 0 {
		t.Fatal("chained follower caught up without the snapshot the compacted WAL requires")
	}

	// Second failover, from the chained follower's directory.
	srv.Fleet().Abort()
	srv.Close()
	if err := fl.Stop(); err != nil {
		t.Fatal(err)
	}
	srv = promote(gen(2))
	epoch2 := srv.Fleet().Epoch()
	if epoch2 <= epoch1 {
		t.Fatalf("second promotion epoch %d not past %d", epoch2, epoch1)
	}
	recs := srv.Fleet().Records(fleetstore.Query{Node: fleetstore.AnyNode})
	if len(recs) != 25 {
		t.Fatalf("double-promoted store has %d records, want 25", len(recs))
	}
	count := make(map[string]int, len(recs))
	for _, r := range recs {
		count[r.Victim]++
	}
	for v, n := range count {
		if n != 1 {
			t.Fatalf("victim %s recovered %d times across the chain", v, n)
		}
	}
	if srv.Fleet().Seq() != last {
		t.Fatalf("double-promoted store at seq %d, want %d", srv.Fleet().Seq(), last)
	}
}

package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/chaos"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/wire"
)

// Writer is the fleet tier's resilient ingest router: it assigns every
// record a per-fabric idempotency sequence, routes it to the fabric's
// ring owner, and survives the fleet's failure modes by construction —
//
//   - transport failure: redial with capped backoff + jitter and
//     resend. The resend carries the same idempotency sequence, so the
//     receiving store admits it exactly once even when the first
//     attempt's ack was the thing that got lost.
//   - failover: a promoted follower answers at a new address (Update
//     repoints the shard); a revived stale primary refuses with a
//     typed fencing error and the writer re-routes instead of
//     retrying into a dead shard's ghost.
//   - reshard: an in-flight plan (SetReshard) overrides routing per
//     fabric — frozen fabrics hold, migrated fabrics go to the new
//     owner, a moved-fabric refusal from the old owner re-resolves.
//
// Write is synchronous: when it returns nil the record is acked by the
// current owner under the shard's durability contract (semi-sync when
// the shard runs with a follower). One Writer per ingest pipeline;
// Write serializes per Writer.
type WriterConfig struct {
	// Specs is the shard set (names must match the ring's).
	Specs []ShardSpec
	// Vnodes/Seed shape the routing ring; must match the cluster's.
	Vnodes int
	Seed   uint64
	// Retry shapes dial/redial backoff (zero = analyzd defaults).
	Retry analyzd.RetryConfig
	// MaxAttempts bounds one Write's routing attempts, re-resolution
	// included (0 = 16).
	MaxAttempts int
	// FreezeWait bounds the hold on a frozen (mid-cutover) fabric per
	// attempt (0 = 2s).
	FreezeWait time.Duration
}

// Writer routes fabric ingest to ring owners. See WriterConfig.
type Writer struct {
	cfg  WriterConfig
	ring *Ring
	rng  *sim.Rand

	mu      sync.Mutex
	specs   map[string]ShardSpec
	clients map[string]*analyzd.Client
	nextSeq map[string]uint64 // per-fabric idempotency sequence
	epochs  map[string]uint64 // per-shard last observed epoch
	reshard *ReshardState
	closed  bool

	// Writes counts acked records; Duplicates acks that hit the dedup
	// watermark (a resend whose first attempt landed); Reroutes
	// fencing/moved refusals that forced re-resolution; Redials
	// transport-failure reconnects.
	Writes     atomic.Uint64
	Duplicates atomic.Uint64
	Reroutes   atomic.Uint64
	Redials    atomic.Uint64
}

// NewWriter builds a writer over the shard set.
func NewWriter(cfg WriterConfig) (*Writer, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("fleet: writer needs at least one shard")
	}
	names := make([]string, len(cfg.Specs))
	specs := make(map[string]ShardSpec, len(cfg.Specs))
	for i, sp := range cfg.Specs {
		if sp.Name == "" || sp.Addr == "" {
			return nil, fmt.Errorf("fleet: writer shard %d needs a name and an address", i)
		}
		if _, dup := specs[sp.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate shard %q", sp.Name)
		}
		specs[sp.Name] = sp
		names[i] = sp.Name
	}
	ring, err := NewRing(names, cfg.Vnodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	if cfg.FreezeWait <= 0 {
		cfg.FreezeWait = 2 * time.Second
	}
	if cfg.Retry.MaxAttempts == 0 && cfg.Retry.BaseBackoff == 0 {
		cfg.Retry = analyzd.DefaultRetryConfig()
	}
	return &Writer{
		cfg:     cfg,
		ring:    ring,
		rng:     sim.NewRand(cfg.Seed ^ 0x57121E57121E5712),
		specs:   specs,
		clients: make(map[string]*analyzd.Client),
		nextSeq: make(map[string]uint64),
		epochs:  make(map[string]uint64),
	}, nil
}

// Ring exposes the routing ring.
func (w *Writer) Ring() *Ring { return w.ring }

// Update repoints one shard at a new primary address (failover) and
// drops any cached session to the old one.
func (w *Writer) Update(spec ShardSpec) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.specs[spec.Name]; !ok {
		return fmt.Errorf("fleet: writer knows no shard %q", spec.Name)
	}
	w.specs[spec.Name] = spec
	if c, ok := w.clients[spec.Name]; ok {
		c.Close()
		delete(w.clients, spec.Name)
	}
	return nil
}

// SetReshard points routing at an in-flight reshard plan; Write
// consults it per fabric until FinishReshard.
func (w *Writer) SetReshard(rs *ReshardState) {
	w.mu.Lock()
	w.reshard = rs
	w.mu.Unlock()
}

// FinishReshard adopts the migrated ring and clears the plan.
func (w *Writer) FinishReshard() {
	w.mu.Lock()
	if w.reshard != nil {
		w.ring = w.reshard.NextRing()
		w.reshard = nil
	}
	w.mu.Unlock()
}

// Close drops every cached shard session.
func (w *Writer) Close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	for name, c := range w.clients {
		c.Close()
		delete(w.clients, name)
	}
}

// owner resolves the fabric's current shard, honoring an in-flight
// reshard.
func (w *Writer) owner(fabric string) (string, *ReshardState) {
	w.mu.Lock()
	rs := w.reshard
	ring := w.ring
	w.mu.Unlock()
	if rs != nil {
		return rs.Owner(fabric), rs
	}
	return ring.Owner(fabric), nil
}

func (w *Writer) client(name string) (*analyzd.Client, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, fmt.Errorf("fleet: writer closed")
	}
	spec, ok := w.specs[name]
	if !ok {
		w.mu.Unlock()
		return nil, fmt.Errorf("fleet: writer knows no shard %q", name)
	}
	if c, ok := w.clients[name]; ok {
		w.mu.Unlock()
		return c, nil
	}
	w.mu.Unlock()
	c, err := analyzd.DialOperatorRetry(spec.Addr, w.cfg.Retry)
	if err != nil {
		return nil, err
	}
	w.Redials.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		c.Close()
		return nil, fmt.Errorf("fleet: writer closed")
	}
	if prev, ok := w.clients[name]; ok {
		c.Close()
		return prev, nil
	}
	w.clients[name] = c
	return c, nil
}

func (w *Writer) drop(name string) {
	w.mu.Lock()
	if c, ok := w.clients[name]; ok {
		c.Close()
		delete(w.clients, name)
	}
	w.mu.Unlock()
}

func (w *Writer) epochOf(name string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epochs[name]
}

func (w *Writer) noteEpoch(name string, epoch uint64) {
	w.mu.Lock()
	if epoch > w.epochs[name] {
		w.epochs[name] = epoch
	}
	w.mu.Unlock()
}

// NextOriginSeq reserves the fabric's next idempotency sequence. Write
// calls it itself; harnesses that need to know a record's sequence
// before writing can reserve and use WriteSeq.
func (w *Writer) NextOriginSeq(fabric string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextSeq[fabric]++
	return w.nextSeq[fabric]
}

// Write routes one record to its fabric's owner and blocks until acked
// (or attempts exhaust). The returned ack reports the owner's epoch
// and whether dedup classified the record as a resend duplicate.
func (w *Writer) Write(fabric string, rec fleetstore.Record) (*wire.WriteAck, error) {
	return w.WriteSeq(fabric, w.NextOriginSeq(fabric), rec)
}

// WriteSeq is Write with an explicit idempotency sequence (reserved
// via NextOriginSeq). Re-invoking with the same sequence is safe: the
// receiving store admits it at most once.
func (w *Writer) WriteSeq(fabric string, originSeq uint64, rec fleetstore.Record) (*wire.WriteAck, error) {
	rec.Fabric = fabric
	rec.OriginSeq = originSeq
	rec.Ctrl = ""
	body, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("fleet: encode record: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < w.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(chaos.Jitter(w.rng, w.cfg.Retry.BaseBackoff, w.cfg.Retry.MaxBackoff,
				attempt-1, w.cfg.Retry.JitterFrac))
		}
		shard, rs := w.owner(fabric)
		if rs != nil && rs.Frozen(fabric) {
			// Mid-cutover hold: when the fabric thaws, ownership may have
			// changed — resolve again.
			if !rs.WaitThaw(fabric, w.cfg.FreezeWait) {
				lastErr = fmt.Errorf("fleet: fabric %q frozen past %s", fabric, w.cfg.FreezeWait)
				continue
			}
			shard, _ = w.owner(fabric)
		}
		c, err := w.client(shard)
		if err != nil {
			lastErr = err
			continue
		}
		ack, err := c.WriteRecord(wire.WriteRequest{
			Fabric:    fabric,
			OriginSeq: originSeq,
			Epoch:     w.epochOf(shard),
			Record:    body,
		})
		if err == nil {
			w.noteEpoch(shard, ack.Epoch)
			w.Writes.Add(1)
			if ack.Duplicate {
				w.Duplicates.Add(1)
			}
			return ack, nil
		}
		lastErr = err
		var fe *analyzd.FenceError
		if errors.As(err, &fe) {
			// Typed refusal: the shard is superseded (a promotion we have
			// not heard about yet) or no longer owns the fabric (reshard).
			// Drop the session and re-resolve — Update/SetReshard from the
			// control plane lands between attempts.
			w.Reroutes.Add(1)
			w.noteEpoch(shard, fe.Info.Epoch)
			if fe.Info.Observed > fe.Info.Epoch {
				w.noteEpoch(shard, fe.Info.Observed)
			}
			w.drop(shard)
			continue
		}
		w.drop(shard)
	}
	return nil, fmt.Errorf("fleet: write %s/%d: %w", fabric, originSeq, lastErr)
}

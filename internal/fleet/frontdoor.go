package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/wire"
)

// ShardSpec names one shard and where its current primary answers.
type ShardSpec struct {
	Name string
	Addr string
}

// ShardError is one shard's failure inside a fan-out: the front door
// returns whatever the reachable shards answered plus this, so a dead
// shard degrades a cluster query instead of failing it.
type ShardError struct {
	Shard string
	Err   error
}

func (e ShardError) Error() string { return fmt.Sprintf("shard %s: %v", e.Shard, e.Err) }

// ShardStatus is one shard's row in a cluster health probe.
type ShardStatus struct {
	Spec   ShardSpec
	Health *wire.Health
	Info   *wire.ShardInfo
	Err    error
}

// Frontdoor fans operator queries out across a cluster's shards and
// merges the answers. Routing is the same consistent-hash ring every
// shard and writer uses (fabric-scoped queries go to one shard); fleet-
// wide queries hit every shard concurrently, and results are collected
// in fixed shard order before merging — the submission-order discipline
// the experiment runner uses, so a cluster query is as deterministic as
// its shards' contents. Incidents merge by (first-seen, shard order);
// rollup windows merge by sketch state, which is why the fan-out asks
// every shard for sketches even when the caller did not.
type Frontdoor struct {
	specs []ShardSpec
	ring  *Ring
	retry analyzd.RetryConfig

	mu      sync.Mutex
	clients map[string]*analyzd.Client
	closed  bool
	// reshard, when set, overrides fabric routing per the in-flight
	// plan; epochs caches each shard's last observed fencing epoch so
	// every fresh dial announces it — contacting a revived stale
	// primary demotes it instead of reading stale answers.
	reshard *ReshardState
	epochs  map[string]uint64
}

// NewFrontdoor builds a front door over the shard set. The ring is
// derived from the shard names with the given vnodes and seed — they
// must match what the writers routing fabrics used, or Owner disagrees
// with where the records actually live.
func NewFrontdoor(specs []ShardSpec, vnodes int, seed uint64) (*Frontdoor, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fleet: frontdoor needs at least one shard")
	}
	names := make([]string, len(specs))
	seen := make(map[string]bool, len(specs))
	for i, sp := range specs {
		if sp.Name == "" || sp.Addr == "" {
			return nil, fmt.Errorf("fleet: shard %d needs a name and an address", i)
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("fleet: duplicate shard %q", sp.Name)
		}
		seen[sp.Name] = true
		names[i] = sp.Name
	}
	ring, err := NewRing(names, vnodes, seed)
	if err != nil {
		return nil, err
	}
	fd := &Frontdoor{
		specs:   make([]ShardSpec, len(specs)),
		ring:    ring,
		retry:   analyzd.DefaultRetryConfig(),
		clients: make(map[string]*analyzd.Client),
		epochs:  make(map[string]uint64),
	}
	copy(fd.specs, specs)
	// Fixed merge order: shard name, so the fan-out collection order is
	// a property of the cluster, not of the caller's spec ordering.
	sort.Slice(fd.specs, func(i, j int) bool { return fd.specs[i].Name < fd.specs[j].Name })
	return fd, nil
}

// Ring exposes the routing ring.
func (fd *Frontdoor) Ring() *Ring { return fd.ring }

// Shards returns the shard set in merge order.
func (fd *Frontdoor) Shards() []ShardSpec {
	out := make([]ShardSpec, len(fd.specs))
	copy(out, fd.specs)
	return out
}

// Owner returns the shard owning a fabric, honoring an in-flight
// reshard: the old owner until the fabric's cutover completes, the new
// owner after.
func (fd *Frontdoor) Owner(fabric string) ShardSpec {
	fd.mu.Lock()
	rs := fd.reshard
	fd.mu.Unlock()
	var name string
	if rs != nil {
		name = rs.Owner(fabric)
	} else {
		name = fd.ring.Owner(fabric)
	}
	for _, sp := range fd.specs {
		if sp.Name == name {
			return sp
		}
	}
	return ShardSpec{} // unreachable: the ring only knows spec names
}

// SetReshard points fabric routing at an in-flight reshard plan.
func (fd *Frontdoor) SetReshard(rs *ReshardState) {
	fd.mu.Lock()
	fd.reshard = rs
	fd.mu.Unlock()
}

// FinishReshard adopts the migrated ring and clears the plan.
func (fd *Frontdoor) FinishReshard() {
	fd.mu.Lock()
	if fd.reshard != nil {
		fd.ring = fd.reshard.NextRing()
		fd.reshard = nil
	}
	fd.mu.Unlock()
}

// NoteEpoch records a shard's observed fencing epoch; every fresh dial
// to that shard announces it, demoting a revived stale primary on
// first contact.
func (fd *Frontdoor) NoteEpoch(shard string, epoch uint64) {
	fd.mu.Lock()
	if epoch > fd.epochs[shard] {
		fd.epochs[shard] = epoch
	}
	fd.mu.Unlock()
}

// Update repoints one shard at a new primary address (after a
// failover promotion) and drops any cached session to the old one.
func (fd *Frontdoor) Update(spec ShardSpec) error {
	for i := range fd.specs {
		if fd.specs[i].Name == spec.Name {
			fd.specs[i].Addr = spec.Addr
			fd.mu.Lock()
			if c, ok := fd.clients[spec.Name]; ok {
				c.Close()
				delete(fd.clients, spec.Name)
			}
			fd.mu.Unlock()
			return nil
		}
	}
	return fmt.Errorf("fleet: unknown shard %q", spec.Name)
}

// Close drops every cached shard session.
func (fd *Frontdoor) Close() {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	fd.closed = true
	for name, c := range fd.clients {
		c.Close()
		delete(fd.clients, name)
	}
}

// client returns a cached operator session to the named shard, dialing
// one if needed.
func (fd *Frontdoor) client(name, addr string) (*analyzd.Client, error) {
	fd.mu.Lock()
	if fd.closed {
		fd.mu.Unlock()
		return nil, fmt.Errorf("fleet: frontdoor closed")
	}
	if c, ok := fd.clients[name]; ok {
		fd.mu.Unlock()
		return c, nil
	}
	fd.mu.Unlock()
	c, err := analyzd.DialOperatorRetry(addr, fd.retry)
	if err != nil {
		return nil, err
	}
	// Carry our epoch view into the fresh session: if this address is a
	// revived stale primary, the announce fences it before any query
	// reads stale state, and the reply refreshes our view either way.
	fd.mu.Lock()
	known := fd.epochs[name]
	fd.mu.Unlock()
	if known > 0 {
		if info, err := c.AnnounceEpoch(name, known); err == nil {
			fd.NoteEpoch(name, info.Epoch)
			if info.Observed > info.Epoch {
				fd.NoteEpoch(name, info.Observed)
			}
		}
	}
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		c.Close()
		return nil, fmt.Errorf("fleet: frontdoor closed")
	}
	if prev, ok := fd.clients[name]; ok {
		c.Close()
		return prev, nil
	}
	fd.clients[name] = c
	return c, nil
}

// drop forgets a shard's cached session after an operation error, so
// the next query redials instead of reusing a dead transport.
func (fd *Frontdoor) drop(name string) {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if c, ok := fd.clients[name]; ok {
		c.Close()
		delete(fd.clients, name)
	}
}

// fanout runs fn against every shard concurrently and collects the
// failures in shard order. fn runs on distinct sessions, one per
// shard, so slow shards overlap.
func (fd *Frontdoor) fanout(fn func(i int, spec ShardSpec, c *analyzd.Client) error) []ShardError {
	errs := make([]error, len(fd.specs))
	var wg sync.WaitGroup
	for i := range fd.specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := fd.specs[i]
			c, err := fd.client(spec.Name, spec.Addr)
			if err != nil {
				errs[i] = err
				return
			}
			if err := fn(i, spec, c); err != nil {
				fd.drop(spec.Name)
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	var out []ShardError
	for i, err := range errs {
		if err != nil {
			out = append(out, ShardError{Shard: fd.specs[i].Name, Err: err})
		}
	}
	return out
}

// errAllShardsDown wraps a fan-out where nothing answered.
func (fd *Frontdoor) allDown(errs []ShardError) error {
	if len(errs) == len(fd.specs) {
		return fmt.Errorf("fleet: every shard failed (first: %w)", errs[0].Err)
	}
	return nil
}

// QueryIncidents fans an incident query across the cluster. A fabric-
// scoped query routes to the owning shard alone; otherwise every shard
// answers and the results merge in (FirstNS, shard-order) order — ties
// resolve by the fixed shard ordering, so the merged view is stable.
// Down shards are reported in the ShardError slice; the error is
// non-nil only when no shard answered.
func (fd *Frontdoor) QueryIncidents(q wire.IncidentQuery) ([]wire.FleetIncident, []ShardError, error) {
	if q.Fabric != "" {
		spec := fd.Owner(q.Fabric)
		c, err := fd.client(spec.Name, spec.Addr)
		if err != nil {
			return nil, []ShardError{{Shard: spec.Name, Err: err}}, err
		}
		incs, err := c.QueryIncidents(q)
		if err != nil {
			fd.drop(spec.Name)
			return nil, []ShardError{{Shard: spec.Name, Err: err}}, err
		}
		return incs, nil, nil
	}

	perShard := make([][]wire.FleetIncident, len(fd.specs))
	errs := fd.fanout(func(i int, spec ShardSpec, c *analyzd.Client) error {
		incs, err := c.QueryIncidents(q)
		if err != nil {
			return err
		}
		perShard[i] = incs
		return nil
	})
	if err := fd.allDown(errs); err != nil {
		return nil, errs, err
	}
	var merged []wire.FleetIncident
	for _, incs := range perShard {
		merged = append(merged, incs...)
	}
	// Stable sort on first-seen: equal timestamps keep shard order, the
	// deterministic-merge discipline.
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].FirstNS < merged[j].FirstNS })
	if q.Limit > 0 && len(merged) > q.Limit {
		merged = merged[:q.Limit]
	}
	return merged, errs, nil
}

// QueryRollups fans a rollup query across the cluster and merges
// same-window summaries by sketch state: counts add exactly, top-K
// sketches union under their combined error bars, quantile buckets
// add. Windows only one shard observed pass through unchanged. The
// fan-out forces IncludeSketches so the merge has state to work with;
// the caller's own flag decides whether the merged windows keep it.
func (fd *Frontdoor) QueryRollups(q wire.RollupQuery) (*wire.RollupResult, []ShardError, error) {
	wantSketches := q.IncludeSketches
	if len(fd.specs) == 1 {
		c, err := fd.client(fd.specs[0].Name, fd.specs[0].Addr)
		if err != nil {
			return nil, []ShardError{{Shard: fd.specs[0].Name, Err: err}}, err
		}
		res, err := c.QueryRollups(q)
		if err != nil {
			fd.drop(fd.specs[0].Name)
			return nil, []ShardError{{Shard: fd.specs[0].Name, Err: err}}, err
		}
		return res, nil, nil
	}

	q.IncludeSketches = true
	results := make([]*wire.RollupResult, len(fd.specs))
	errs := fd.fanout(func(i int, spec ShardSpec, c *analyzd.Client) error {
		res, err := c.QueryRollups(q)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err := fd.allDown(errs); err != nil {
		return nil, errs, err
	}

	byStart := make(map[int64][]wire.RollupSummary)
	var starts []int64
	var slidings []wire.RollupSummary
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, w := range res.Windows {
			if _, ok := byStart[w.StartNS]; !ok {
				starts = append(starts, w.StartNS)
			}
			byStart[w.StartNS] = append(byStart[w.StartNS], w)
		}
		if res.Sliding != nil {
			slidings = append(slidings, *res.Sliding)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	out := &wire.RollupResult{}
	for _, start := range starts {
		merged, err := mergeWireWindows(byStart[start], wantSketches)
		if err != nil {
			return nil, errs, fmt.Errorf("fleet: merge window at %d: %w", start, err)
		}
		out.Windows = append(out.Windows, merged)
	}
	if q.Windows > 0 && len(out.Windows) > q.Windows {
		out.Windows = out.Windows[len(out.Windows)-q.Windows:]
	}
	// Sliding views merge only when every answering shard produced one
	// over the same span; otherwise the merged result omits it rather
	// than blending mismatched ranges.
	if len(slidings) > 0 && slidingSpansAgree(slidings) {
		merged, err := mergeWireWindows(slidings, wantSketches)
		if err == nil {
			out.Sliding = &merged
		}
	}
	return out, errs, nil
}

func slidingSpansAgree(sums []wire.RollupSummary) bool {
	for i := 1; i < len(sums); i++ {
		if sums[i].StartNS != sums[0].StartNS || sums[i].EndNS != sums[0].EndNS {
			return false
		}
	}
	return true
}

// mergeWireWindows merges same-window summaries from several shards.
// A single summary passes through as-is (modulo sketch stripping).
func mergeWireWindows(ws []wire.RollupSummary, keepSketches bool) (wire.RollupSummary, error) {
	if len(ws) == 1 {
		out := ws[0]
		if !keepSketches {
			out.Sketches = nil
		}
		return out, nil
	}
	sums := make([]rollup.Summary, len(ws))
	for i := range ws {
		s, err := summaryFromWire(&ws[i])
		if err != nil {
			return wire.RollupSummary{}, err
		}
		sums[i] = s
	}
	merged, err := rollup.MergeWindows(sums)
	if err != nil {
		return wire.RollupSummary{}, err
	}
	if !keepSketches {
		merged.Sketches = nil
	}
	return summaryToWire(&merged), nil
}

// summaryFromWire rebuilds the mergeable parts of a shard's window:
// the counts plus the sketch state MergeWindows re-renders everything
// else from. The sketch state crossed a process boundary, so import
// validation (rollup.ErrBadSketchState) runs on every field.
func summaryFromWire(ws *wire.RollupSummary) (rollup.Summary, error) {
	if len(ws.Sketches) == 0 {
		return rollup.Summary{}, fmt.Errorf("window at %d carries no sketch state", ws.StartNS)
	}
	var sk rollup.SummarySketches
	if err := json.Unmarshal(ws.Sketches, &sk); err != nil {
		return rollup.Summary{}, fmt.Errorf("decode sketch state: %w", err)
	}
	return rollup.Summary{
		Start:        sim.Time(ws.StartNS),
		End:          sim.Time(ws.EndNS),
		Closed:       ws.Closed,
		Records:      ws.Records,
		Bytes:        ws.Bytes,
		Evictions:    ws.Evictions,
		ByType:       ws.ByType,
		ByCause:      ws.ByCause,
		ByConfidence: ws.ByConfidence,
		Sketches:     &sk,
	}, nil
}

// summaryToWire renders a merged summary back onto the wire shape —
// the front door's counterpart of the analyzer's own conversion.
func summaryToWire(sum *rollup.Summary) wire.RollupSummary {
	out := wire.RollupSummary{
		StartNS:      int64(sum.Start),
		EndNS:        int64(sum.End),
		Closed:       sum.Closed,
		Records:      sum.Records,
		ByType:       sum.ByType,
		ByCause:      sum.ByCause,
		ByConfidence: sum.ByConfidence,
		StallNS: wire.RollupQuantiles{
			Count: sum.StallNS.Count, P50: sum.StallNS.P50, P90: sum.StallNS.P90,
			P99: sum.StallNS.P99, Max: sum.StallNS.Max,
		},
		Score: wire.RollupQuantiles{
			Count: sum.Score.Count, P50: sum.Score.P50, P90: sum.Score.P90,
			P99: sum.Score.P99, Max: sum.Score.Max,
		},
		Bytes:     sum.Bytes,
		Evictions: sum.Evictions,
		Headline:  sum.Headline,
	}
	if len(sum.TopLevels) > 0 {
		out.Top = make(map[string][]wire.RollupHitter, len(sum.TopLevels))
		for level, hitters := range sum.TopLevels {
			hs := make([]wire.RollupHitter, len(hitters))
			for i, h := range hitters {
				hs[i] = wire.RollupHitter{Key: h.Key, Count: h.Count, Err: h.Err}
			}
			out.Top[level] = hs
		}
	}
	if sum.Sketches != nil {
		if b, err := json.Marshal(sum.Sketches); err == nil {
			out.Sketches = b
		}
	}
	return out
}

// Health probes every shard: lifecycle health plus cluster identity
// (role, replication lag, last checkpoint). Rows come back in shard
// order with per-shard errors inline — a down shard is a row, not a
// failure.
func (fd *Frontdoor) Health() []ShardStatus {
	rows := make([]ShardStatus, len(fd.specs))
	fd.fanout(func(i int, spec ShardSpec, c *analyzd.Client) error {
		row := ShardStatus{Spec: spec}
		h, err := c.Health()
		if err != nil {
			row.Err = err
			rows[i] = row
			return err
		}
		row.Health = h
		info, err := c.ShardInfo()
		if err != nil {
			row.Err = err
			rows[i] = row
			return err
		}
		fd.NoteEpoch(spec.Name, info.Epoch)
		row.Info = info
		rows[i] = row
		return nil
	})
	for i := range rows {
		if rows[i].Spec.Name == "" {
			rows[i].Spec = fd.specs[i] // client dial failed before fn ran
			rows[i].Err = fmt.Errorf("unreachable")
		}
	}
	return rows
}

// TailEvent is one incident event annotated with its source shard.
type TailEvent struct {
	Shard string
	Event wire.IncidentEvent
}

// Tail is a cluster-wide incident subscription: one session per shard,
// fanned into a single channel.
type Tail struct {
	events chan TailEvent
	stop   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	conns  []*analyzd.Client
}

// Events is the merged stream. It closes after Close, or once every
// shard's session has ended.
func (t *Tail) Events() <-chan TailEvent { return t.events }

// Close ends every shard session and waits for the forwarders.
func (t *Tail) Close() {
	t.once.Do(func() { close(t.stop) })
	for _, c := range t.conns {
		c.Close()
	}
	t.wg.Wait()
}

// Subscribe opens a live incident tail across the cluster: a dedicated
// operator session per shard (subscriptions consume their session), a
// forwarder each, one merged channel. A fabric-scoped request tails
// only the owning shard. Shards that refused the subscription are in
// the ShardError slice; the error is non-nil when none accepted.
func (fd *Frontdoor) Subscribe(req wire.SubscribeRequest, buf int) (*Tail, []ShardError, error) {
	if buf <= 0 {
		buf = 64
	}
	specs := fd.specs
	if req.Fabric != "" {
		specs = []ShardSpec{fd.Owner(req.Fabric)}
	}
	t := &Tail{events: make(chan TailEvent, buf), stop: make(chan struct{})}
	var errs []ShardError
	for _, spec := range specs {
		c, err := analyzd.DialOperatorRetry(spec.Addr, fd.retry)
		if err != nil {
			errs = append(errs, ShardError{Shard: spec.Name, Err: err})
			continue
		}
		if err := c.Subscribe(req); err != nil {
			c.Close()
			errs = append(errs, ShardError{Shard: spec.Name, Err: err})
			continue
		}
		t.conns = append(t.conns, c)
		t.wg.Add(1)
		go func(name string, c *analyzd.Client) {
			defer t.wg.Done()
			for {
				ev, err := c.NextEvent()
				if err != nil {
					return // drain, connection loss or Close
				}
				select {
				case t.events <- TailEvent{Shard: name, Event: *ev}:
				case <-t.stop:
					return
				}
			}
		}(spec.Name, c)
	}
	if len(t.conns) == 0 {
		close(t.events)
		first := fmt.Errorf("no shards")
		if len(errs) > 0 {
			first = errs[0].Err
		}
		return nil, errs, fmt.Errorf("fleet: every shard refused the tail (first: %w)", first)
	}
	go func() {
		t.wg.Wait()
		close(t.events)
	}()
	return t, errs, nil
}

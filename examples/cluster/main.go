// Cluster example: the horizontal fleet tier end to end. Three durable
// shards come up, each with a live follower replicating its WAL over
// the wire; a record stream routes across them by the consistent-hash
// ring; one primary is killed mid-stream and its follower promoted;
// then the front door fans a cluster-wide query out and merges the
// answers. The run asserts the fleet tier's contract — no acknowledged
// record lost across the failover, deterministic routing, merged
// rollup windows identical to a single reference summarizer — and
// exits non-zero on any violation.
//
//	go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"os"

	"hawkeye/internal/fleet"
)

func main() {
	dir, err := os.MkdirTemp("", "hawkeye-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("3-shard cluster kill-loop (seed 42): semi-sync replication,")
	fmt.Println("seed-chosen primary kills, follower promotion, front-door merge")
	fmt.Println()

	rep, err := fleet.KillLoop(dir, 42, fleet.KillLoopConfig{Rounds: 3})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster contract violated:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	fmt.Println()
	fmt.Printf("every one of the %d acknowledged records survived %d failovers,\n",
		rep.Acked, rep.Failovers)
	fmt.Printf("and the front door's %d merged rollup windows matched a single\n",
		rep.MergedWindows)
	fmt.Println("reference summarizer exactly — counts, quantiles and heavy hitters.")
}

// Rollup example: three fabrics, one summarized view. The same fleet
// scenario as examples/fleet — two pods suffering an incast, a third a
// PFC storm — but instead of drinking the raw incident firehose, the
// operator tails the analyzer's bounded-memory rollup summaries. The
// example counts both streams side by side and asserts the compression
// the rollups exist to provide: at least 10x fewer rollup events than
// raw incident events. It then drills back down — from the hottest
// switch in the summary to the constituent incidents in the store — to
// show the summary is a lens, not a lossy dead end. Exits non-zero if
// either property fails.
//
//	go run ./examples/rollup
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/experiments"
	"hawkeye/internal/rollup"
	"hawkeye/internal/wire"
	"hawkeye/internal/workload"
)

func main() {
	// Wide panes and sparse progress updates: the trials replay a few
	// milliseconds of fabric time, so one pane holds the whole storm
	// and the event stream stays quiet while the store churns.
	rcfg := rollup.DefaultConfig()
	rcfg.Pane = 10 * 1000 * 1000 // 10ms of fabric time
	rcfg.UpdateEvery = 256
	srv, err := analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{Rollup: rcfg})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("analyzer service on %s\n", srv.Addr())

	// Two operator tails, side by side: the raw incident firehose and
	// the rollup summary stream. Both just count; the point is the
	// ratio between them.
	var rawEvents, rollupEvents atomic.Uint64
	var tails sync.WaitGroup

	raw, err := analyzd.DialOperator(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer raw.Close()
	if err := raw.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		log.Fatal(err)
	}
	tails.Add(1)
	go func() {
		defer tails.Done()
		for {
			if _, err := raw.NextEvent(); err != nil {
				return // server closed
			}
			rawEvents.Add(1)
		}
	}()

	sum, err := analyzd.DialOperator(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer sum.Close()
	if err := sum.SubscribeRollups(wire.RollupSubscribeRequest{}); err != nil {
		log.Fatal(err)
	}
	tails.Add(1)
	go func() {
		defer tails.Done()
		for {
			ev, err := sum.NextRollup()
			if err != nil {
				return
			}
			rollupEvents.Add(1)
			fmt.Printf("  rollup [%s] %d record(s): %s\n",
				strings.ToUpper(ev.Kind), ev.Summary.Records, ev.Summary.Headline)
		}
	}()

	fabrics := []struct {
		name     string
		scenario string
	}{
		{"pod-a", workload.NameIncast},
		{"pod-b", workload.NameIncast},
		{"pod-c", workload.NameStorm},
	}
	var wg sync.WaitGroup
	for _, f := range fabrics {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := driveFabric(srv.Addr(), f.name, f.scenario); err != nil {
				log.Printf("%s: %v", f.name, err)
			}
		}()
	}
	wg.Wait()

	// Query the summarized view. QueryRollups drains the ingest
	// pipeline first, so this reads everything the fabrics filed.
	q, err := analyzd.DialOperator(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()
	res, err := q.QueryRollups(wire.RollupQuery{Sliding: 8})
	if err != nil {
		log.Fatal(err)
	}
	if res.Sliding == nil {
		fmt.Fprintln(os.Stderr, "FAIL: no rollup windows after three fabrics reported")
		os.Exit(1)
	}
	view := res.Sliding
	fmt.Printf("\nsummarized view (%d window(s) merged): %s\n", len(res.Windows), view.Headline)
	fmt.Printf("  %d record(s); types: %v\n", view.Records, view.ByType)
	for _, level := range []string{"fabric", "switch"} {
		for _, h := range view.Top[level] {
			fmt.Printf("  top %-6s %s = %d (±%d)\n", level, h.Key, h.Count, h.Err)
		}
	}
	fmt.Printf("  sketch state: %d bytes, %d evictions\n", view.Bytes, view.Evictions)

	// Drill down: the hottest switch key encodes the node ID
	// (fabric/pod/N<id>), and the store can answer for it directly.
	if len(view.Top["switch"]) == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: summarized view has no switch heavy hitters")
		os.Exit(1)
	}
	hot := view.Top["switch"][0].Key
	node, err := nodeFromKey(hot)
	if err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
		os.Exit(1)
	}
	incs, err := q.QueryIncidents(wire.IncidentQuery{Node: node})
	if err != nil {
		log.Fatal(err)
	}
	if len(incs) == 0 {
		fmt.Fprintf(os.Stderr, "FAIL: drill-down from %s (node %d) found no incidents\n", hot, node)
		os.Exit(1)
	}
	fmt.Printf("\ndrill-down %s -> node %d -> %d incident(s):\n", hot, node, len(incs))
	for _, inc := range incs {
		fmt.Printf("  #%d %s\n", inc.ID, inc.Summary)
	}

	// Let the forwarders deliver what the drained pipeline published,
	// then cut both tails and compare volumes.
	time.Sleep(200 * time.Millisecond)
	raw.Close()
	sum.Close()
	tails.Wait()

	rawN, sumN := rawEvents.Load(), rollupEvents.Load()
	fmt.Printf("\nstream volume: %d raw incident events vs %d rollup events\n", rawN, sumN)
	if sumN == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: rollup tail saw no events")
		os.Exit(1)
	}
	if rawN < 10*sumN {
		fmt.Fprintf(os.Stderr, "FAIL: want raw >= 10x rollup volume, got %dx\n", rawN/sumN)
		os.Exit(1)
	}
	fmt.Printf("OK: rollup stream is %dx quieter than the incident firehose\n", rawN/sumN)
}

// nodeFromKey recovers the node ID from a switch-level rollup key,
// which ends in "/N<id>".
func nodeFromKey(key string) (int, error) {
	i := strings.LastIndexByte(key, '/')
	if i < 0 || i+2 > len(key) || key[i+1] != 'N' {
		return 0, fmt.Errorf("malformed switch key %q", key)
	}
	node, err := strconv.Atoi(key[i+2:])
	if err != nil {
		return 0, fmt.Errorf("malformed switch key %q: %v", key, err)
	}
	return node, nil
}

// driveFabric simulates one fabric's anomaly and replays it into the
// analyzer under the given fleet name, exactly as examples/fleet does.
func driveFabric(addr, name, scenario string) error {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(scenario, 1))
	if err != nil {
		return err
	}
	c, err := analyzd.DialFabric(addr, name, tr.Cl.Topo, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	if err != nil {
		return err
	}
	defer c.Close()
	for _, rep := range tr.View.Traced {
		if err := c.SendReport(rep); err != nil {
			return err
		}
	}
	complaints := 0
	for _, r := range tr.Results {
		if !tr.GT.Victims[r.Trigger.Victim] || r.Trigger.At < tr.GT.AnomalyAt {
			continue
		}
		if _, err := c.DiagnoseAt(r.Trigger.Victim, int64(r.Trigger.At)); err != nil {
			return err
		}
		complaints++
	}
	fmt.Printf("%s: %s — %d telemetry reports, %d complaints filed\n",
		name, scenario, len(tr.View.Traced), complaints)
	return nil
}

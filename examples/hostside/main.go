// Hostside example: the three host-side anomaly pathologies and the
// host-vs-network attribution the host-agent counter channel buys.
//
// A slow receiver, a cache-thrashing NIC and a pause-storming NIC all
// look identical from the fabric: a host-facing port under sustained
// PFC with innocent traffic behind it. The host agent's registers —
// RX-buffer occupancy, drain rate, pause counters, processing-latency
// proxy — are what tell the three apart, and what tell all three apart
// from a network-caused storm. The example runs each pathology twice:
// once with host agents on (exact attribution) and once with the
// channel disabled, showing the degraded-mode contract — the verdict
// loses confidence and says which host evidence is missing instead of
// confidently blaming the network.
//
//	go run ./examples/hostside
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/experiments"
	"hawkeye/internal/workload"
)

func main() {
	for _, name := range workload.HostScenarios() {
		fmt.Printf("== %s ==\n", name)
		for _, degraded := range []bool{false, true} {
			cfg := experiments.DefaultTrialConfig(name, 2)
			cfg.DisableHostAgents = degraded
			tr, err := experiments.RunTrial(cfg)
			if err != nil {
				log.Fatal(err)
			}
			arm := "host agents ON "
			if degraded {
				arm = "host agents OFF"
			}
			r := tr.Score.Result
			if r == nil {
				fmt.Printf("%s: no diagnosis scored\n", arm)
				continue
			}
			d := r.Diagnosis
			cause := d.PrimaryCause()
			fmt.Printf("%s: %v / %v, confidence %v (%.2f), correct=%v\n",
				arm, d.Type, cause.Kind, d.Confidence, d.ConfidenceScore, tr.Score.Correct)
			for _, m := range d.Missing {
				fmt.Printf("    missing: %s\n", m)
			}
		}
		fmt.Println()
	}

	// The mixed evaluation: host and network anomalies interleaved, host
	// agents on. The attribution row is the headline — host-caused
	// anomalies pinned on the right host with the right pathology.
	eval, err := experiments.RunHostEval(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.Table())
}

// Quickstart: build the evaluation fabric, install Hawkeye, inject a
// micro-burst incast, and print the diagnosis.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func main() {
	// 1. A fat-tree K=4 fabric: 20 switches, 16 hosts, 100 Gbps links
	//    (the paper's NS-3 setup).
	ft, err := topo.NewFatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	routing := topo.ComputeRouting(ft.Topology)
	cl := cluster.New(ft.Topology, routing, cluster.DefaultConfig(ft.Topology))

	// 2. Install Hawkeye: PFC-aware telemetry and polling logic on every
	//    switch, detection agents on every host.
	cfg := core.DefaultConfig()
	cfg.Collect.BaseLatency = 200 * sim.Microsecond // keep the demo short
	cfg.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Traffic: a victim flow, plus a synchronized incast into the
	//    victim's neighbour that will PFC-pause the victim's path.
	target := ft.PodHosts[2][0]
	sibling := ft.PodHosts[2][1]
	victim := cl.StartFlowRate(ft.PodHosts[0][0], sibling, 20_000_000, 0, 20e9)
	cl.StartFlowRate(ft.PodHosts[0][1], target, 20_000_000, 0, 20e9)
	for _, src := range []topo.NodeID{sibling, ft.PodHosts[2][2], ft.PodHosts[2][3]} {
		cl.StartFlow(src, target, 1_000_000, 400*sim.Microsecond)
	}

	// 4. Run and diagnose.
	cl.Run(10 * sim.Millisecond)
	results := sys.DiagnoseAll()

	fmt.Printf("victim flow: %v\n", victim.Tuple)
	fmt.Printf("detection events: %d\n\n", len(sys.Triggers()))
	for _, r := range results {
		if r.Trigger.Victim != victim.Tuple {
			continue
		}
		fmt.Printf("diagnosis triggered at %v (%s):\n", r.Trigger.At, r.Trigger.Reason)
		fmt.Print(r.Diagnosis.String())
		fmt.Printf("\ntelemetry: %d switches, %d bytes collected\n",
			len(r.Switches), r.ReportBytes)
		return
	}
	fmt.Println("victim never complained — try a heavier incast")
}

// Capture example: record a PFC storm as a standard libpcap file and
// analyze it offline with the repository's own reader — the workflow an
// operator without Hawkeye would attempt ("take a capture, stare at it").
// The analysis shows why captures alone fall short: the pause frames are
// all visible, but nothing in them says WHO caused the storm. The same
// trace diagnosed by Hawkeye names the injector.
//
//	go run ./examples/capture [trace.pcap]
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/packet"
	"hawkeye/internal/pcap"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

func main() {
	path := "storm.pcap"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}

	// Build the fat-tree, install Hawkeye, attach a capture tap.
	ft, err := topo.NewFatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	routing := topo.ComputeRouting(ft.Topology)
	ccfg := cluster.DefaultConfig(ft.Topology)
	ccfg.Host.Agent.RTTFactor = 2
	cl := cluster.New(ft.Topology, routing, ccfg)

	score := core.DefaultConfig()
	score.Collect.BaseLatency = 200 * sim.Microsecond
	score.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, score)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w, err := pcap.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	tap := pcap.AttachTap(cl.Net, w)

	// The anomaly: a rogue host injects PFC (Fig. 1b).
	params := workload.DefaultParams(score.Telemetry.EpochSize())
	gt := workload.BuildStorm(cl, ft, params)
	cl.Run(gt.AnomalyAt + 10*sim.Millisecond)
	if tap.Err != nil {
		log.Fatal(tap.Err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d frames -> %s (open with tcpdump/Wireshark)\n\n", w.Packets, path)

	// The operator's view: replay the capture and tally it.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	pr, err := pcap.NewReader(rf)
	if err != nil {
		log.Fatal(err)
	}
	pfcBySrc := map[[6]byte]int{}
	var frames, pfcFrames int
	var firstPFC sim.Time
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		frames++
		dec, err := pcap.DecodeFrame(rec.Data)
		if err != nil {
			log.Fatal(err)
		}
		if dec.IsPFC && dec.PFC.Paused(packet.ClassLossless) {
			pfcFrames++
			pfcBySrc[dec.SrcMAC]++
			if firstPFC == 0 {
				firstPFC = rec.TS
			}
		}
	}
	fmt.Printf("capture analysis: %d frames, %d PFC PAUSE frames, first at %v\n",
		frames, pfcFrames, firstPFC)
	type srcCount struct {
		mac [6]byte
		n   int
	}
	var tops []srcCount
	for mac, n := range pfcBySrc {
		tops = append(tops, srcCount{mac, n})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].n != tops[j].n {
			return tops[i].n > tops[j].n
		}
		return tops[i].mac[3] < tops[j].mac[3]
	})
	fmt.Println("top PAUSE senders (MACs):")
	for i, s := range tops {
		if i == 3 {
			break
		}
		fmt.Printf("  %02x:%02x:%02x:%02x:%02x:%02x  %d frames\n",
			s.mac[0], s.mac[1], s.mac[2], s.mac[3], s.mac[4], s.mac[5], s.n)
	}
	fmt.Println("\n-> the capture shows a pause volume ranking, but every switch in")
	fmt.Println("   the spreading tree relays pauses: volume does not separate the")
	fmt.Println("   injector from its victims. Hawkeye's provenance does:")

	results := sys.DiagnoseAll()
	for _, r := range results {
		if !gt.Victims[r.Trigger.Victim] || r.Trigger.At < gt.AnomalyAt {
			continue
		}
		fmt.Printf("\n%s", r.Diagnosis.String())
		cause := r.Diagnosis.PrimaryCause()
		peer, _ := cl.Topo.PeerOf(cause.Port.Node, cause.Port.Port)
		fmt.Printf("identified injector: %s (ground truth: %s)\n",
			cl.Topo.Node(peer).Name, cl.Topo.Node(gt.Injector).Name)
		break
	}
}

// PFC storm example (paper Fig. 1b): a malfunctioning NIC continuously
// injects PAUSE frames; flows that never touch the rogue host stall; the
// diagnosis walks the spreading path back to the injecting host.
//
//	go run ./examples/storm
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func main() {
	ft, err := topo.NewFatTree(4)
	if err != nil {
		log.Fatal(err)
	}
	routing := topo.ComputeRouting(ft.Topology)
	cl := cluster.New(ft.Topology, routing, cluster.DefaultConfig(ft.Topology))
	cfg := core.DefaultConfig()
	cfg.Collect.BaseLatency = 200 * sim.Microsecond
	cfg.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The rogue host injects PFC for 10 ms starting at 300 µs —
	// a slow-receiver / buggy-firmware emulation.
	rogue := ft.PodHosts[1][0]
	cl.Hosts[rogue].InjectPFC(300*sim.Microsecond, 10*sim.Millisecond, packet.MaxPauseQuanta)

	// Innocent senders toward the rogue (rate-capped: no contention).
	for _, src := range []topo.NodeID{ft.PodHosts[0][0], ft.PodHosts[0][1], ft.PodHosts[3][1]} {
		cl.StartFlowRate(src, rogue, 40_000_000, 0, 25e9)
	}

	cl.Run(8 * sim.Millisecond)

	for _, r := range sys.DiagnoseAll() {
		if r.Diagnosis.Type != diagnosis.TypePFCStorm {
			continue
		}
		cause := r.Diagnosis.PrimaryCause()
		peer, _ := cl.Topo.PeerOf(cause.Port.Node, cause.Port.Port)
		fmt.Printf("victim %v complained at %v\n", r.Trigger.Victim, r.Trigger.At)
		fmt.Print(r.Diagnosis.String())
		fmt.Printf("\ninjecting host resolved: %s (node %d) — ground truth: %s\n",
			cl.Topo.Node(peer).Name, peer, cl.Topo.Node(rogue).Name)
		return
	}
	fmt.Println("no storm diagnosed")
}

// Chaos example: the same incast-backpressure scenario as
// examples/incast, but with deterministic fault injection turned on —
// telemetry epochs lost, causality meters corrupted, report batches
// dropped between switch CPU and analyzer. The point of the exercise:
// the diagnosis degrades *honestly*. As the fault rate climbs, the
// confidence grade falls and the missing-evidence report says what was
// lost; it never stays high-confidence on a starved graph.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/chaos"
	"hawkeye/internal/experiments"
	"hawkeye/internal/workload"
)

func main() {
	// One trial with a concrete schedule, to show the degraded report.
	sched, err := chaos.ParseSchedule(
		"tel-loss=0.4,meter-corrupt=0.1,collect-drop=0.2,collect-lag=300us")
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiments.DefaultTrialConfig(workload.NameIncast, 1)
	cfg.Chaos = sched
	tr, err := experiments.RunTrial(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: %s\n", sched)
	fmt.Printf("%v\n\n", tr.Chaos.Counters)
	if r := tr.Score.Result; r != nil {
		fmt.Printf("diagnosis under fire (victim %v):\n", r.Trigger.Victim)
		fmt.Print(r.Diagnosis.String())
	} else {
		fmt.Println("no complaint scored under this schedule")
	}

	// The robustness curve: sweep telemetry loss 0 -> 50% and watch the
	// confidence grade track the evidence that survived. Rerunning with
	// the same seed reproduces this table byte for byte.
	fmt.Println("\nrobustness sweep (tel-loss 0 -> 50%):")
	curve, err := experiments.RunRobustnessCurve(
		workload.NameIncast, 1, []float64{0, 0.1, 0.25, 0.5}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(curve.Table())
}

// Watchdog example: mitigation versus diagnosis (§2.2). The same
// forced-clockwise ring deadlock runs twice — once bare (it never
// resolves) and once with a SONiC-style PFC watchdog on every switch.
// The watchdog restores service by dropping lossless traffic, but the
// storm keeps recurring because the root cause (the routing loop) is
// untouched; that diagnosis is Hawkeye's half, shown by the deadlock
// example and the in-loop-deadlock scenario.
//
//	go run ./examples/watchdog
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/cluster"
	"hawkeye/internal/packet"
	"hawkeye/internal/pfcwd"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func run(withWatchdog bool) {
	ring, err := topo.NewRing(4, 2, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		log.Fatal(err)
	}
	r := topo.ComputeRouting(ring.Topology)
	ring.ForceClockwise(r, nil)
	cl := cluster.New(ring.Topology, r, cluster.DefaultConfig(ring.Topology))

	var dogs []*pfcwd.Watchdog
	if withWatchdog {
		for _, id := range ring.Switches {
			w, err := pfcwd.Attach(cl.Eng, cl.Switches[id], pfcwd.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			w.OnStorm = func(port int, now sim.Time) {
				fmt.Printf("  %8v  watchdog: storm on a ring port, flushing + discarding\n", now)
			}
			dogs = append(dogs, w)
		}
	}
	for i := 0; i < 4; i++ {
		for h := 0; h < 2; h++ {
			cl.StartFlow(ring.HostsAt[i][h], ring.HostsAt[(i+2)%4][h], 2_000_000, 0)
		}
	}
	cl.Run(25 * sim.Millisecond)

	stuck, acked := 0, uint32(0)
	var wdDrops uint64
	for _, id := range ring.Switches {
		sw := cl.Switches[id]
		wdDrops += sw.WatchdogDrops
		for p := 0; p < sw.NumPorts(); p++ {
			if !ring.Topology.IsHostFacing(id, p) && sw.PauseAsserted(p, packet.ClassLossless) {
				stuck++
			}
		}
	}
	for _, hs := range ring.HostsAt {
		for _, h := range hs {
			for _, f := range cl.Hosts[h].Flows() {
				acked += f.AckedPackets()
			}
		}
	}
	storms, restores := 0, 0
	for _, w := range dogs {
		storms += w.Stats().Storms
		restores += w.Stats().Restores
	}
	fmt.Printf("  after 25ms: paused ring ingresses=%d, delivered packets=%d", stuck, acked)
	if withWatchdog {
		fmt.Printf(", storms=%d restores=%d lossless drops=%d", storms, restores, wdDrops)
	}
	fmt.Println()
}

func main() {
	fmt.Println("ring deadlock WITHOUT mitigation (cyclic buffer dependency, permanent):")
	run(false)
	fmt.Println()
	fmt.Println("same deadlock WITH a PFC watchdog on every switch:")
	run(true)
	fmt.Println()
	fmt.Println("the watchdog restores delivery by sacrificing losslessness — and the")
	fmt.Println("storm recurs, because the routing loop is still there. Finding THAT")
	fmt.Println("is the diagnosis problem Hawkeye solves (see examples/deadlock).")
}

// Remote-analyzer example: the deployment split the paper describes —
// telemetry is produced in the fabric, but the provenance analysis runs
// in a central analyzer service. This example simulates an incast,
// starts the analyzer as a real TCP service, streams the collected
// telemetry reports to it, and prints the remote verdict.
//
//	go run ./examples/remote-analyzer
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/experiments"
	"hawkeye/internal/workload"
)

func main() {
	// Produce telemetry: one simulated incast trace with Hawkeye installed.
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		log.Fatal(err)
	}
	if tr.Score.Result == nil {
		log.Fatal("no complaint was scored")
	}
	fmt.Printf("simulated incast: %d telemetry reports collected for victim %v\n",
		len(tr.View.Traced), tr.Score.Result.Trigger.Victim)

	// The analyzer side: a TCP service, topology learned at handshake.
	srv, err := analyzd.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("analyzer service on %s\n\n", srv.Addr())

	client, err := analyzd.Dial(srv.Addr(), tr.Cl.Topo, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	for _, rep := range tr.View.Traced {
		if err := client.SendReport(rep); err != nil {
			log.Fatal(err)
		}
	}

	verdict, err := client.DiagnoseAt(tr.Score.Result.Trigger.Victim, int64(tr.Score.Result.Trigger.At))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote verdict: %s (cause %s at N%d.P%d, %d reports used)\n",
		verdict.Type, verdict.CauseKind, verdict.InitialNode, verdict.InitialPort, verdict.Switches)
	for _, c := range verdict.Culprits {
		fmt.Printf("  culprit: %s\n", c)
	}

	// Replay the other complaints of the same event and ask the server to
	// group everything into incidents.
	for _, r := range tr.Results {
		if r != tr.Score.Result && tr.GT.Victims[r.Trigger.Victim] && r.Trigger.At >= tr.GT.AnomalyAt {
			if _, err := client.DiagnoseAt(r.Trigger.Victim, int64(r.Trigger.At)); err != nil {
				log.Fatal(err)
			}
		}
	}
	incs, err := client.Incidents()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver-side incident grouping: %d incident(s)\n", len(incs))
	for _, inc := range incs {
		fmt.Printf("  %s: %d complaints from %d victims\n", inc.Type, inc.Complaints, inc.Victims)
	}

	fmt.Printf("\nlocal verdict for comparison: %v\n", tr.Score.Result.Diagnosis.Type)
	fmt.Printf("scored against ground truth: correct=%v (%s)\n", tr.Score.Correct, tr.Score.Reason)
}

// Incast backpressure example (paper Fig. 1a): synchronized micro-bursts
// congest one host port; PFC spreads the congestion hop by hop; a victim
// that never shares a queue with the bursts gets head-of-line blocked.
// The example contrasts what a flow-interaction-only monitor would blame
// (the flows next to the victim) with the PFC-provenance root cause.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/experiments"
	"hawkeye/internal/workload"
)

func main() {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		log.Fatal(err)
	}
	if tr.Score.Result == nil {
		fmt.Println("no complaint scored")
		return
	}
	r := tr.Score.Result

	fmt.Printf("victim: %v (complained at %v, %s)\n\n",
		r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)

	fmt.Println("what a local flow-interaction monitor would see:")
	fmt.Printf("  flows sharing queues with the victim on its own path — none of\n")
	fmt.Printf("  which launched the burst (the root cause is hops away).\n\n")

	fmt.Println("what Hawkeye's PFC provenance reports:")
	fmt.Print(r.Diagnosis.String())

	cause := r.Diagnosis.PrimaryCause()
	fmt.Printf("\nroot-cause burst flows (ground truth has %d):\n", len(tr.GT.Culprits))
	for _, f := range cause.Flows {
		mark := " "
		if tr.GT.Culprits[f] {
			mark = "*"
		}
		fmt.Printf("  %s %v\n", mark, f)
	}
	fmt.Printf("\nPFC spreading path(s):\n")
	for _, p := range r.Diagnosis.PFCPaths {
		fmt.Printf("  %v\n", p)
	}
	fmt.Printf("\nscored: correct=%v (%s)\n", tr.Score.Correct, tr.Score.Reason)
}

// ECMP-imbalance example: the load-imbalance anomaly the paper's §2
// motivates. Nothing is misconfigured — all switches hash identically
// (the textbook polarization cause), so three parity-aligned elephants
// pile onto ONE core uplink while its equal-cost sibling idles. PFC
// spreads the hot uplink's backpressure; Hawkeye diagnoses the
// contention AND refines the cause to "ecmp-imbalance" because the
// culprits had an alternative path and converged anyway.
//
//	go run ./examples/imbalance
package main

import (
	"fmt"
	"log"

	"hawkeye/internal/experiments"
)

func main() {
	score, err := experiments.RunECMPImbalance(1)
	if err != nil {
		log.Fatal(err)
	}
	if score.Result == nil {
		fmt.Println("no complaint scored")
		return
	}
	r := score.Result
	fmt.Printf("victim complaint: %v at %v (%s)\n\n", r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)
	fmt.Print(r.Diagnosis.String())
	fmt.Printf("\ncause refinement (§3.5.2): %v\n", r.Detail)
	fmt.Println("-> the contributing flows had an equal-cost sibling uplink and")
	fmt.Println("   polarized anyway: rebalance the hashing, don't blame the traffic.")
	fmt.Printf("\nscored against ground truth: correct=%v (%s)\n", score.Correct, score.Reason)
}

// Fleet example: one analyzer serving a whole fleet. Several simulated
// fabrics run different anomalies concurrently, stream their telemetry
// to a single analyzer service, and file victim complaints; the
// analyzer's fleet store clusters the complaint storm into a handful of
// semantic incidents. An operator connection tails the incident
// lifecycle live while the fabrics report, then queries the final
// clustered view.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/experiments"
	"hawkeye/internal/wire"
	"hawkeye/internal/workload"
)

func main() {
	srv, err := analyzd.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("analyzer service on %s\n", srv.Addr())

	// The operator tails the fleet before any fabric reports.
	tail, err := analyzd.DialOperator(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer tail.Close()
	if err := tail.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		log.Fatal(err)
	}
	events := make(chan *wire.IncidentEvent, 64)
	go func() {
		defer close(events)
		for {
			ev, err := tail.NextEvent()
			if err != nil {
				return // server closed
			}
			events <- ev
		}
	}()

	// Three fabrics, two distinct anomalies: two pods suffer an incast
	// (their complaints should merge into one fleet incident), a third
	// suffers a PFC storm.
	fabrics := []struct {
		name     string
		scenario string
	}{
		{"pod-a", workload.NameIncast},
		{"pod-b", workload.NameIncast},
		{"pod-c", workload.NameStorm},
	}
	var wg sync.WaitGroup
	for _, f := range fabrics {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := driveFabric(srv.Addr(), f.name, f.scenario); err != nil {
				log.Printf("%s: %v", f.name, err)
			}
		}()
	}
	wg.Wait()

	fmt.Println("\nlive incident events seen by the operator tail:")
	drained := 0
drain:
	for {
		select {
		case ev := <-events:
			if ev == nil {
				break drain
			}
			fmt.Printf("  [%s] %s\n", strings.ToUpper(ev.Kind), ev.Incident.Summary)
			drained++
		default:
			break drain
		}
	}
	if drained == 0 {
		fmt.Println("  (none)")
	}

	// The final clustered view, over the wire.
	q, err := analyzd.DialOperator(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer q.Close()
	incs, err := q.QueryIncidents(wire.IncidentQuery{Node: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet store: %d clustered incident(s)\n", len(incs))
	for _, inc := range incs {
		fmt.Printf("  #%d %s\n", inc.ID, inc.Summary)
		fmt.Printf("      fabrics: %s\n", strings.Join(inc.Fabrics, ", "))
		for k, vals := range inc.Varying {
			fmt.Printf("      varying %s: %d values\n", k, len(vals))
		}
	}

	st := srv.Stats()
	fmt.Printf("\nserver: %d sessions, %d reports, %d diagnoses; fleet: %d ingested, %d dropped, %d incidents\n",
		st.Sessions, st.Reports, st.Diagnoses, st.Ingested, st.Dropped, st.Incidents)
}

// driveFabric simulates one fabric's anomaly and replays it into the
// analyzer under the given fleet name: telemetry reports first, then
// every ground-truth victim complaint from the anomaly window.
func driveFabric(addr, name, scenario string) error {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(scenario, 1))
	if err != nil {
		return err
	}
	c, err := analyzd.DialFabric(addr, name, tr.Cl.Topo, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	if err != nil {
		return err
	}
	defer c.Close()
	for _, rep := range tr.View.Traced {
		if err := c.SendReport(rep); err != nil {
			return err
		}
	}
	complaints := 0
	for _, r := range tr.Results {
		if !tr.GT.Victims[r.Trigger.Victim] || r.Trigger.At < tr.GT.AnomalyAt {
			continue
		}
		if _, err := c.DiagnoseAt(r.Trigger.Victim, int64(r.Trigger.At)); err != nil {
			return err
		}
		complaints++
	}
	fmt.Printf("%s: %s — %d telemetry reports, %d complaints filed\n",
		name, scenario, len(tr.View.Traced), complaints)
	return nil
}

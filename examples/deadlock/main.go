// Deadlock example (paper Fig. 1c/1d): routing misconfiguration forms a
// cyclic buffer dependency across two pods' aggregation and core
// switches; the diagnosis finds the loop in the provenance graph and
// classifies the initiator (in-loop contention vs out-of-loop injection).
//
//	go run ./examples/deadlock [-injection]
package main

import (
	"flag"
	"fmt"
	"log"

	"hawkeye/internal/experiments"
	"hawkeye/internal/workload"
)

func main() {
	injection := flag.Bool("injection", false, "out-of-loop host-injection variant (Fig 1d); default in-loop contention (Fig 1c)")
	seed := flag.Uint64("seed", 1, "trace seed")
	flag.Parse()

	scenario := workload.NameInLoop
	if *injection {
		scenario = workload.NameOutLoopInject
	}
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(scenario, *seed))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %s\n", scenario)
	fmt.Printf("cyclic buffer dependency across: agg0-0 -> core0 -> agg1-0 -> core1 -> agg0-0\n")
	fmt.Printf("anomaly injected at %v; %d detection events\n\n", tr.GT.AnomalyAt, len(tr.Sys.Triggers()))

	if tr.Score.Result == nil {
		fmt.Println("no victim complaint scored")
		return
	}
	r := tr.Score.Result
	fmt.Printf("scored complaint: %v at %v (%s)\n", r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)
	fmt.Print(r.Diagnosis.String())
	if len(r.Diagnosis.Loop) > 0 {
		fmt.Printf("\ncircular buffer dependency confirmed over %d ports — resolve by\n", len(r.Diagnosis.Loop))
		fmt.Println("fixing the routing entries that send traffic up after going down.")
	}
	fmt.Printf("\nground truth matched: %v (%s)\n", tr.Score.Correct, tr.Score.Reason)
}

module hawkeye

go 1.22

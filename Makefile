# Standard library only; the targets below are the whole toolchain.

GO ?= go

.PHONY: check build vet test race bench bench-baseline bench-fleet fleet-race chaos-smoke recovery-smoke fuzz-smoke rollup-smoke cluster-smoke reshard-smoke host-smoke

# check is the CI gate: compile everything, vet, full race-enabled tests.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fleet-race is the fast loop while working on the ingest pipeline.
fleet-race:
	$(GO) test -race ./internal/fleetstore ./internal/analyzd

# chaos-smoke proves the fault-injection contract end to end: replay
# determinism, the degraded-confidence sweep, and the retrying client.
chaos-smoke:
	$(GO) test ./internal/chaos
	$(GO) test -run 'TestChaosDeterminism|TestRobustnessConfidenceSweep' ./internal/experiments
	$(GO) test -run 'TestDial|TestDiagnoseSurvives|TestRetry|TestHandshake' ./internal/analyzd

# recovery-smoke proves the crash-safety contract: a 20-seed
# crash-restart sweep over the durable fleet store under the race
# detector (torn WAL tails, snapshot+delta recovery, exactly-once
# acked records, no incident-ID reuse), plus the WAL corruption and
# server lifecycle suites.
recovery-smoke:
	$(GO) test -race -run TestCrashRestart ./internal/chaos -crash.seeds=20
	$(GO) test -race ./internal/fleetstore/wal
	$(GO) test -race -run 'TestOpen|TestReopen|TestCheckpoint|TestSnapshot|TestEviction|TestReplay' ./internal/fleetstore
	$(GO) test -race -run 'TestShed|TestThrottle|TestClose|TestDrain|TestHealth|TestServerRestart' ./internal/analyzd

# fuzz-smoke runs every native fuzz target for 10s over the committed
# corpora (testdata/fuzz/) plus fresh mutations — the hostile-input
# gate. A finding is committed back as a corpus seed so it replays
# deterministically forever after.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzReadFrame$$' -fuzztime=10s -run='^$$' ./internal/wire
	$(GO) test -fuzz='^FuzzHello$$' -fuzztime=10s -run='^$$' ./internal/wire
	$(GO) test -fuzz='^FuzzDecodeReport$$' -fuzztime=10s -run='^$$' ./internal/telemetry
	$(GO) test -fuzz='^FuzzIncidentQuery$$' -fuzztime=10s -run='^$$' ./internal/analyzd
	$(GO) test -fuzz='^FuzzWALRecord$$' -fuzztime=10s -run='^$$' ./internal/fleetstore/wal
	$(GO) test -fuzz='^FuzzReplicationRecord$$' -fuzztime=10s -run='^$$' ./internal/wire
	$(GO) test -fuzz='^FuzzFenceFrame$$' -fuzztime=10s -run='^$$' ./internal/wire
	$(GO) test -fuzz='^FuzzHostReport$$' -fuzztime=10s -run='^$$' ./internal/telemetry

# host-smoke proves the host-vs-network attribution contract: the
# 200-seed degraded-mode property sweep under the race detector (host
# telemetry present -> the pathology is attributed host-side at the
# sick host; absent -> never a high-confidence network verdict), the
# mixed host/network evaluation with its >= 90% attribution floor, the
# host-telemetry robustness curve, and the pathology model suite. The
# hostside example rides along.
host-smoke:
	$(GO) test -race -run TestHostAttributionProperty ./internal/experiments -host.seeds=200 -timeout 40m
	$(GO) test -race -run 'TestHostEvalAccuracy|TestMixedRobustnessConfidence' ./internal/experiments -timeout 20m
	$(GO) test -race ./internal/host
	$(GO) run ./examples/hostside

# cluster-smoke proves the scale-out contract: a 20-seed kill-loop over
# a 3-shard cluster under the race detector — every shard a durable
# primary with a live TCP follower, records routed by the
# consistent-hash ring and acknowledged only when the follower holds
# them durably, a seed-chosen primary killed and its follower promoted
# every round — asserting no acked record lost, deterministic routing,
# and front-door rollup merges identical to a single-store reference.
# The ring/follower/frontdoor suites and the cluster example ride
# along.
cluster-smoke:
	$(GO) test -race -run TestKillLoop ./internal/fleet -fleet.seeds=20
	$(GO) test -race -run 'TestRing|TestFollower|TestFrontdoor' ./internal/fleet
	$(GO) run ./examples/cluster

# reshard-smoke proves the failover-under-migration contract: a
# 20-seed partition+reshard loop over a 3-shard cluster under the race
# detector — a self-healing writer routing ingest by the ring, a
# mid-round online reshard (freeze -> copy -> release -> adopt) racing
# the writes, the primary killed and its follower promoted with an
# epoch bump every round, and the old primary revived behind a
# partition to prove the fence: zero post-fence acks, exactly-once
# acked records across moves and failovers, and front-door rollup
# merges identical to a single-store reference. The writer, executor
# and epoch suites ride along.
reshard-smoke:
	$(GO) test -race -run TestReshardLoop ./internal/fleet -fleet.reshard.seeds=20
	$(GO) test -race -run 'TestWriter|TestExecutor|TestDoubleFailover' ./internal/fleet
	$(GO) test -race -run 'TestEpoch|TestAddUnique|TestFreeze|TestPurgeAdopt' ./internal/fleetstore

# rollup-smoke proves the summarization contract end to end: the
# three-fabric example must produce a rollup stream >= 10x quieter than
# the raw incident firehose with drill-down recovering the constituent
# incidents (it exits non-zero otherwise), backed by the sketch
# error-bound and memory-cap suites and the wire-level rollup tests.
rollup-smoke:
	$(GO) run ./examples/rollup
	$(GO) test -race ./internal/rollup
	$(GO) test -race -run 'TestRollup|TestResubscribe' ./internal/analyzd

# bench is the perf gate: run the harness suite (sim hot paths,
# telemetry extraction, rollup ingest, serial + parallel EvalRun
# sweeps) and fail on a >25% ns/op regression — or any new allocation
# on a zero-alloc path — against the committed baseline. trials/sec and
# the parallel speedup land in the printed report. The baseline records
# its GOMAXPROCS and the gate refuses to compare across core counts;
# run with GOMAXPROCS matching BENCH_experiments.json or re-record via
# bench-baseline.
bench:
	$(GO) run ./cmd/hawkeye-perf -baseline BENCH_experiments.json -gate 0.25

# bench-baseline re-measures and rewrites the committed baseline; run it
# (on a quiet machine) when a deliberate perf change shifts the numbers.
bench-baseline:
	$(GO) run ./cmd/hawkeye-perf -out BENCH_experiments.json

bench-fleet:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/fleetstore

# Standard library only; the targets below are the whole toolchain.

GO ?= go

.PHONY: check build vet test race bench fleet-race chaos-smoke

# check is the CI gate: compile everything, vet, full race-enabled tests.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fleet-race is the fast loop while working on the ingest pipeline.
fleet-race:
	$(GO) test -race ./internal/fleetstore ./internal/analyzd

# chaos-smoke proves the fault-injection contract end to end: replay
# determinism, the degraded-confidence sweep, and the retrying client.
chaos-smoke:
	$(GO) test ./internal/chaos
	$(GO) test -run 'TestChaosDeterminism|TestRobustnessConfidenceSweep' ./internal/experiments
	$(GO) test -run 'TestDial|TestDiagnoseSurvives|TestRetry|TestHandshake' ./internal/analyzd

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/fleetstore

// Command hawkeye-bench runs the full evaluation suite (§4) and prints
// every table/figure: the Fig. 7 parameter sweep, the Fig. 8-11 baseline
// comparison, the Fig. 12 case studies, the Fig. 13 resource model, the
// Fig. 14 collection-efficiency numbers, and the extra ablations.
//
// Usage:
//
//	hawkeye-bench -trials 5 -full
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hawkeye/internal/experiments"
	"hawkeye/internal/resources"
)

func main() {
	trials := flag.Int("trials", 3, "trials per scenario")
	full := flag.Bool("full", false, "run the full Fig 7 sweep (5 epochs x 4 thresholds)")
	skipCases := flag.Bool("no-cases", false, "skip the Fig 12 case studies")
	flag.Parse()

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-bench:", err)
			os.Exit(1)
		}
	}

	start := time.Now()

	fig7cfg := experiments.QuickFig7()
	if *full {
		fig7cfg = experiments.DefaultFig7()
	}
	fig7cfg.Trials = *trials
	_, t7, err := experiments.Fig7(fig7cfg)
	die(err)
	fmt.Println(t7)

	run, err := experiments.RunEval(*trials)
	die(err)
	fmt.Println(run.Fig8())
	fmt.Println(run.Fig9())
	fmt.Println(run.Fig10())
	fmt.Println(run.Fig11())

	if !*skipCases {
		cases, err := experiments.Fig12()
		die(err)
		fmt.Println(cases)
	}

	fmt.Println(resources.Fig13a())
	fmt.Println(resources.Fig13b())
	fmt.Println(run.Fig14())
	fmt.Println(experiments.PollerLatency())

	am, err := experiments.AblationMeterBits(*trials)
	die(err)
	fmt.Println(am)
	ae, err := experiments.AblationEpochCount(*trials)
	die(err)
	fmt.Println(ae)
	ad, err := experiments.AblationDedup(*trials)
	die(err)
	fmt.Println(ad)

	tb, err := experiments.TestbedTable(*trials)
	die(err)
	fmt.Println(tb)
	pd, err := experiments.PartialDeployment(*trials)
	die(err)
	fmt.Println(pd)

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// Command hawkeye-bench runs the full evaluation suite (§4) and prints
// every table/figure: the Fig. 7 parameter sweep, the Fig. 8-11 baseline
// comparison, the Fig. 12 case studies, the Fig. 13 resource model, the
// Fig. 14 collection-efficiency numbers, and the extra ablations.
//
// Usage:
//
//	hawkeye-bench -trials 5 -full -parallel 8
//
// Every sweep fans its trials across the parallel scheduler; the output
// is byte-identical at any -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hawkeye/internal/experiments"
	"hawkeye/internal/resources"
)

func main() {
	trials := flag.Int("trials", 3, "trials per scenario")
	full := flag.Bool("full", false, "run the full Fig 7 sweep (5 epochs x 4 thresholds)")
	skipCases := flag.Bool("no-cases", false, "skip the Fig 12 case studies")
	parallel := flag.Int("parallel", 0, "trial workers per sweep (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-bench:", err)
			os.Exit(1)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := experiments.NewRunner(workers)
	start := time.Now()
	nTrials := 0

	fig7cfg := experiments.QuickFig7()
	if *full {
		fig7cfg = experiments.DefaultFig7()
	}
	fig7cfg.Trials = *trials
	_, t7, err := r.Fig7(fig7cfg)
	die(err)
	fmt.Println(t7)
	nTrials += len(experiments.AnomalyScenarios()) * len(fig7cfg.EpochBits) * len(fig7cfg.Factors) * *trials

	run, err := r.RunEval(*trials)
	die(err)
	fmt.Println(run.Fig8())
	fmt.Println(run.Fig9())
	fmt.Println(run.Fig10())
	fmt.Println(run.Fig11())
	nTrials += len(experiments.EvalScenarios()) * *trials

	if !*skipCases {
		cases, err := r.Fig12()
		die(err)
		fmt.Println(cases)
		nTrials += len(experiments.EvalScenarios())
	}

	fmt.Println(resources.Fig13a())
	fmt.Println(resources.Fig13b())
	fmt.Println(run.Fig14())
	fmt.Println(experiments.PollerLatency())

	am, err := r.AblationMeterBits(*trials)
	die(err)
	fmt.Println(am)
	nTrials += len(experiments.AnomalyScenarios()) * *trials
	ae, err := r.AblationEpochCount(*trials)
	die(err)
	fmt.Println(ae)
	nTrials += len(experiments.AnomalyScenarios()) * 3 * *trials
	ad, err := r.AblationDedup(*trials)
	die(err)
	fmt.Println(ad)
	nTrials += 2 * *trials

	tb, err := r.TestbedTable(*trials)
	die(err)
	fmt.Println(tb)
	nTrials += 2 * *trials
	pd, err := r.PartialDeployment(*trials)
	die(err)
	fmt.Println(pd)
	nTrials += len(experiments.EvalScenarios()) * 2 * *trials

	elapsed := time.Since(start)
	fmt.Printf("total: %d trials, %d workers, wall %v, %.2f trials/sec\n",
		nTrials, workers, elapsed.Round(time.Millisecond), float64(nTrials)/elapsed.Seconds())
}

// Command hawkeye-shardd runs one shard of a horizontally scaled
// Hawkeye control plane. In primary mode it is a durable analyzer
// named on the cluster's consistent-hash ring; in follower mode it
// replicates a primary's WAL over the wire into its own durable
// directory and can promote itself into a serving primary when the
// primary stays unreachable.
//
// Usage:
//
//	# primary: a named, durable, replication-capable analyzer
//	hawkeye-shardd -listen 127.0.0.1:9401 -shard shard-a -data-dir /var/lib/hawkeye/a
//
//	# follower: mirror shard-a's durable state
//	hawkeye-shardd -follow 127.0.0.1:9401 -data-dir /var/lib/hawkeye/a-standby
//
//	# follower with automatic failover: after 10s without a primary,
//	# promote and serve on -listen
//	hawkeye-shardd -follow 127.0.0.1:9401 -data-dir /var/lib/hawkeye/a-standby \
//	    -listen 127.0.0.1:9401 -shard shard-a -promote-after 10s
//
// Promotion reuses the store's normal snapshot+WAL recovery: the
// follower's directory is byte-compatible with a primary's, so the
// promoted server starts exactly where the acknowledged stream ended.
// Repoint the surviving followers and the front door at the new
// address (hawkeye-fleet -cluster ... health shows who answers).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/fleet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9401", "TCP listen address (primary mode, or after promotion)")
	shard := flag.String("shard", "", "shard name on the cluster's consistent-hash ring")
	dataDir := flag.String("data-dir", "", "durable store directory (required)")
	follow := flag.String("follow", "", "follower mode: replicate from this primary address")
	promoteAfter := flag.Duration("promote-after", 0,
		"follower mode: promote to primary after this long without a primary connection (0 = never, wait for a signal)")
	readTimeout := flag.Duration("read-timeout", 0, "per-frame read deadline for fabric sessions (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second,
		"on SIGTERM, refuse new ingest and wait up to this long for an attached follower to mirror the full admission sequence before exiting (0 = exit immediately)")
	semiSync := flag.Duration("semi-sync", 0,
		"acknowledge a writer-routed record only once a follower holds it durably, bounded by this wait (0 = local durability only)")
	flag.Parse()

	if *dataDir == "" {
		fail(fmt.Errorf("-data-dir is required: a shard without durable state cannot be replicated or promoted"))
	}
	if *follow == "" && *shard == "" {
		fail(fmt.Errorf("-shard is required in primary mode: the ring routes by shard name"))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *follow != "" {
		runFollower(*follow, *listen, *shard, *dataDir, *promoteAfter, *readTimeout, *drainTimeout, *semiSync, sig)
		return
	}
	servePrimary(*listen, *shard, *dataDir, *readTimeout, *drainTimeout, *semiSync, sig)
}

// servePrimary runs the shard as a named durable analyzer until a
// signal drains it.
func servePrimary(listen, shard, dataDir string, readTimeout, drainTimeout, semiSync time.Duration, sig chan os.Signal) {
	s, err := analyzd.ListenOpts(listen, analyzd.Options{
		DataDir:     dataDir,
		Shard:       shard,
		ReadTimeout: readTimeout,
		SemiSync:    semiSync,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("hawkeye-shardd: shard %s serving on %s (store %s, %d records recovered, epoch %d)\n",
		shard, s.Addr(), dataDir, s.Fleet().Seq(), s.Fleet().Epoch())

	<-sig
	drain(s, shard, drainTimeout)
}

// drain is the graceful SIGTERM handoff: refuse new ingest, let an
// attached follower mirror everything already admitted (bounded by
// drainTimeout), then close. A clean handoff means the follower can
// be promoted with zero acked-record loss the moment this process
// exits.
func drain(s *analyzd.Server, shard string, drainTimeout time.Duration) {
	fmt.Println("hawkeye-shardd: draining (ingest refused)")
	if drainTimeout > 0 {
		s.BeginHandoff()
		target := s.Fleet().Seq()
		watermark, caughtUp := s.WaitFollower(drainTimeout)
		if caughtUp {
			fmt.Printf("hawkeye-shardd: follower caught up at watermark %d\n", watermark)
		} else {
			fmt.Fprintf(os.Stderr,
				"hawkeye-shardd: drain timeout: follower at watermark %d, store at %d — promoting it now would lose acked records\n",
				watermark, target)
		}
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-shardd: close:", err)
	}
	fmt.Printf("hawkeye-shardd: shard %s stopped at seq %d (epoch %d)\n", shard, s.Fleet().Seq(), s.Fleet().Epoch())
}

// runFollower mirrors a primary until a signal stops it — or, with
// -promote-after, until the primary has been unreachable that long, at
// which point the follower promotes itself and serves.
func runFollower(follow, listen, shard, dataDir string, promoteAfter, readTimeout, drainTimeout, semiSync time.Duration, sig chan os.Signal) {
	fl, err := fleet.StartFollower(fleet.FollowerConfig{Addr: follow, Dir: dataDir})
	if err != nil {
		fail(err)
	}
	fmt.Printf("hawkeye-shardd: following %s into %s (watermark %d)\n", follow, dataDir, fl.AckedSeq())

	var down time.Duration
	const probe = time.Second
	ticker := time.NewTicker(probe)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			if err := fl.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "hawkeye-shardd: stop:", err)
			}
			fmt.Printf("hawkeye-shardd: follower stopped at watermark %d (%d records, %d snapshots, %d re-syncs)\n",
				fl.AckedSeq(), fl.Records(), fl.Snapshots(), fl.Resyncs())
			return
		case <-ticker.C:
			if fl.Connected() {
				down = 0
				continue
			}
			down += probe
			if promoteAfter <= 0 || down < promoteAfter {
				continue
			}
		}
		break
	}

	// Promotion: stop replicating, then serve from the follower's own
	// directory — the store's recovery path rebuilds incidents and
	// rollup state from the replicated snapshot + WAL. BumpEpoch claims
	// a higher epoch than the dead primary ever held, so if it comes
	// back it fences itself on first contact with the fleet.
	fmt.Printf("hawkeye-shardd: primary unreachable for %v, promoting at watermark %d\n", down, fl.AckedSeq())
	if err := fl.Stop(); err != nil {
		fail(fmt.Errorf("stop follower: %w", err))
	}
	if shard == "" {
		shard = "promoted"
	}
	s, err := analyzd.ListenOpts(listen, analyzd.Options{
		DataDir:     dataDir,
		Shard:       shard,
		ReadTimeout: readTimeout,
		SemiSync:    semiSync,
		BumpEpoch:   true,
	})
	if err != nil {
		fail(fmt.Errorf("promote: %w", err))
	}
	fmt.Printf("hawkeye-shardd: shard %s promoted, serving on %s at seq %d (epoch %d)\n",
		shard, s.Addr(), s.Fleet().Seq(), s.Fleet().Epoch())

	<-sig
	drain(s, shard, drainTimeout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hawkeye-shardd:", err)
	os.Exit(1)
}

// Command hawkeye-analyzer runs the Hawkeye analyzer as a standalone TCP
// service. Telemetry producers (switch CPU pollers, or a simulation
// harness) open a session with the fabric topology, push binary telemetry
// reports, and request diagnoses of victim flows; the service answers
// with the provenance verdict (anomaly type, initial congestion point,
// culprit flows).
//
// Usage:
//
//	hawkeye-analyzer -listen 127.0.0.1:9393
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hawkeye/internal/analyzd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9393", "TCP listen address")
	flag.Parse()

	s, err := analyzd.Listen(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-analyzer:", err)
		os.Exit(1)
	}
	fmt.Printf("hawkeye-analyzer listening on %s\n", s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-analyzer: close:", err)
	}
	st := s.Stats()
	fmt.Printf("served %d sessions, %d reports, %d diagnoses\n",
		st.Sessions, st.Reports, st.Diagnoses)
	fmt.Printf("fleet store: %d ingested, %d dropped, %d evicted; %d incidents (%d open)\n",
		st.Ingested, st.Dropped, st.Evicted, st.Incidents, st.OpenIncidents)
}

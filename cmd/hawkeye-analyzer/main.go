// Command hawkeye-analyzer runs the Hawkeye analyzer as a standalone TCP
// service. Telemetry producers (switch CPU pollers, or a simulation
// harness) open a session with the fabric topology, push binary telemetry
// reports, and request diagnoses of victim flows; the service answers
// with the provenance verdict (anomaly type, initial congestion point,
// culprit flows).
//
// With -data-dir the fleet store is durable: diagnoses are written to a
// write-ahead log, checkpointed into snapshots, and recovered on the
// next start — a crash loses nothing that was acknowledged. SIGTERM (or
// ctrl-c) drains gracefully: the listener closes, live subscribers get
// a terminal shutdown frame, the ingest queue flushes, and a final
// checkpoint is written.
//
// Usage:
//
//	hawkeye-analyzer -listen 127.0.0.1:9393
//	hawkeye-analyzer -listen 127.0.0.1:9393 -data-dir /var/lib/hawkeye
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hawkeye/internal/analyzd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9393", "TCP listen address")
	dataDir := flag.String("data-dir", "", "durable fleet store directory (empty = in-memory)")
	readTimeout := flag.Duration("read-timeout", 0,
		"per-frame read deadline for fabric sessions (0 = no deadline)")
	maxStrikes := flag.Int("max-strikes", 0,
		fmt.Sprintf("malformed/rejected frames before a session is quarantined (0 = default %d, negative = never)",
			analyzd.DefaultMaxStrikes))
	flag.Parse()

	s, err := analyzd.ListenOpts(*listen, analyzd.Options{
		DataDir:     *dataDir,
		ReadTimeout: *readTimeout,
		MaxStrikes:  *maxStrikes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-analyzer:", err)
		os.Exit(1)
	}
	fmt.Printf("hawkeye-analyzer listening on %s\n", s.Addr())
	if *dataDir != "" {
		rec := s.Fleet().Recovery()
		fmt.Printf("durable store at %s: replayed %d WAL records", *dataDir, s.Stats().Replayed)
		if rec.Torn {
			fmt.Printf(" (truncated %d torn bytes, dropped %d post-tear segments)",
				rec.TornBytes, rec.DroppedSegments)
		}
		fmt.Println()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("hawkeye-analyzer: draining")

	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-analyzer: close:", err)
	}
	st := s.Stats()
	fmt.Printf("served %d sessions, %d reports, %d diagnoses\n",
		st.Sessions, st.Reports, st.Diagnoses)
	fmt.Printf("fleet store: %d ingested, %d dropped, %d evicted; %d incidents (%d open)\n",
		st.Ingested, st.Dropped, st.Evicted, st.Incidents, st.OpenIncidents)
	fmt.Printf("admission: shed %d subscriptions, %d queries, %d rollup subscriptions; %d WAL errors\n",
		st.ShedSubscriptions, st.ShedQueries, st.ShedRollups, st.WALErrors)
	fmt.Printf("rollups: %d windows closed (%d still open), %d sketch evictions, %d bytes in use\n",
		st.RollupWindowsClosed, st.RollupWindowsOpen, st.RollupEvictions, st.RollupBytes)
	fmt.Printf("hostile input: %d decode errors, %d rejected reports, %d clamped values, %d sessions quarantined\n",
		st.DecodeErrors, st.RejectedReports, st.ClampedValues, st.QuarantinedSessions)
}

// Command hawkeye-trace inspects the evaluation workload: it samples the
// empirical RoCEv2 flow-size distribution (§4.1) and simulates a
// background-only trace, reporting flow counts, completion statistics and
// PFC activity at a given load. With -pcap it additionally records every
// wire event as a standard libpcap capture (VLAN-tagged IPv4/UDP frames,
// 802.1Qbb MAC-control frames for PFC) readable by tcpdump/Wireshark.
//
// Usage:
//
//	hawkeye-trace -load 0.1 -ms 10 -samples 20 [-pcap trace.pcap]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hawkeye/internal/cluster"
	"hawkeye/internal/pcap"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

func main() {
	load := flag.Float64("load", 0.1, "target host-link load (0..1)")
	ms := flag.Int("ms", 10, "trace length in milliseconds")
	samples := flag.Int("samples", 10, "flow-size samples to print")
	divisor := flag.Int64("scale", workload.DefaultScaleDivisor, "flow-size scale divisor (1 = paper scale)")
	seed := flag.Uint64("seed", 1, "workload seed")
	pcapPath := flag.String("pcap", "", "write a libpcap capture of all wire events to this file")
	topoPath := flag.String("topo", "", "JSON topology spec to run on (default: fat-tree K=4)")
	cdfName := flag.String("cdf", "paper", "flow-size distribution: paper, websearch, hadoop")
	flag.Parse()

	cdf, err := workload.CDFByName(*cdfName, *divisor)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("flow-size distribution (scale 1/%d, mean %.0f B):\n", *divisor, cdf.Mean())
	rng := sim.NewRand(*seed)
	sizes := make([]int64, *samples)
	for i := range sizes {
		sizes[i] = cdf.Sample(rng)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	for _, s := range sizes {
		fmt.Printf("  %d B\n", s)
	}

	var tp *topo.Topology
	if *topoPath != "" {
		data, err := os.ReadFile(*topoPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace:", err)
			os.Exit(1)
		}
		tp, err = topo.ParseSpecJSON(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("topology from %s: %d switches, %d hosts\n",
			*topoPath, len(tp.Switches()), len(tp.Hosts()))
	} else {
		ft, err := topo.NewFatTree(4)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace:", err)
			os.Exit(1)
		}
		tp = ft.Topology
	}
	r := topo.ComputeRouting(tp)
	cl := cluster.New(tp, r, cluster.DefaultConfig(tp))

	var tap *pcap.Tap
	var pcapWriter *pcap.Writer
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		pcapWriter, err = pcap.NewWriter(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace:", err)
			os.Exit(1)
		}
		tap = pcap.AttachTap(cl.Net, pcapWriter)
	}

	horizon := sim.Time(*ms) * sim.Millisecond
	bg := &workload.Background{Load: *load, CDF: cdf, Start: 0, Stop: horizon}
	n := bg.Install(cl, sim.NewRand(*seed^0xBEEF))
	cl.Run(horizon + 5*sim.Millisecond)

	completed, active := 0, 0
	var fcts []sim.Time
	for _, h := range cl.Hosts {
		for _, f := range h.Flows() {
			if f.Completed() {
				completed++
				fcts = append(fcts, f.FCT())
			} else {
				active++
			}
		}
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	fmt.Printf("\ntrace: %d flows over %v at load %.2f\n", n, horizon, *load)
	fmt.Printf("completed %d, still active %d\n", completed, active)
	if len(fcts) > 0 {
		fmt.Printf("FCT p50=%v p99=%v max=%v\n",
			fcts[len(fcts)/2], fcts[len(fcts)*99/100], fcts[len(fcts)-1])
	}
	fmt.Printf("PFC frames: %d; drops: %d; delivered packets: %d\n",
		cl.TotalPFCFrames(), cl.TotalDrops(), cl.Net.Delivered)

	if tap != nil {
		if tap.Err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace: pcap:", tap.Err)
			os.Exit(1)
		}
		if err := pcapWriter.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-trace: pcap:", err)
			os.Exit(1)
		}
		fmt.Printf("pcap: %d frames -> %s\n", pcapWriter.Packets, *pcapPath)
	}
}

// Command hawkeye-sim runs one anomaly scenario on the fat-tree K=4
// evaluation topology with Hawkeye installed, then prints the detection
// events, the heterogeneous provenance graph and the diagnosis — the
// workflow of the paper's case studies (Fig. 12).
//
// Usage:
//
//	hawkeye-sim -scenario incast-backpressure -seed 1 -v
//	hawkeye-sim -sweep eval -trials 3 -parallel 8
//	hawkeye-sim -sweep fig7 -cpuprofile cpu.pprof
//
// With -sweep it runs a figure sweep on the parallel trial scheduler
// instead of a single trial, printing the table plus wall-clock and
// trials/sec. -cpuprofile / -memprofile capture pprof profiles of
// whichever mode ran.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hawkeye/internal/chaos"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/experiments"
	"hawkeye/internal/metrics"
	"hawkeye/internal/sim"
	"hawkeye/internal/workload"
)

func main() {
	scenario := flag.String("scenario", workload.NameIncast,
		"one of: "+strings.Join(workload.AllScenarios(), ", "))
	hostAnomaly := flag.String("host-anomaly", "",
		"shorthand for the host pathologies: slow-receiver, cache-thrash or pause-storm (overrides -scenario)")
	noHostAgents := flag.Bool("no-host-agents", false,
		"disable the host-agent counter channel (degraded-mode ablation)")
	seed := flag.Uint64("seed", 1, "trace seed")
	load := flag.Float64("load", -1, "background load (0..1); -1 = scenario default")
	epochBits := flag.Uint("epoch-bits", 0, "log2 telemetry epoch ns (0 = default 17, ~131us)")
	factor := flag.Float64("threshold", 0, "detection threshold as xRTT (0 = scenario default)")
	verbose := flag.Bool("v", false, "print every diagnosis result, not only the scored one")
	dotPath := flag.String("dot", "", "write the scored provenance graph as Graphviz DOT to this file")
	chaosSpec := flag.String("chaos", "", "fault schedule, e.g. poll-loss=0.1,tel-loss=0.3,collect-drop=0.2 (see internal/chaos)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-injection seed (0 = derive from -seed)")
	sweep := flag.String("sweep", "", "run a figure sweep instead of one trial: eval, fig7, robustness, testbed, host-eval, host-robustness")
	trials := flag.Int("trials", 3, "trials (seeds) per sweep point")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			die(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			die(err)
		}
		defer pprof.StopCPUProfile()
	}
	exit := func(code int) {
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				die(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				die(err)
			}
			f.Close()
		}
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(code)
	}

	if *hostAnomaly != "" {
		name, ok := map[string]string{
			"slow-receiver": workload.NameSlowReceiver,
			"cache-thrash":  workload.NameCacheThrash,
			"pause-storm":   workload.NameHostPauseStorm,
		}[*hostAnomaly]
		if !ok {
			fmt.Fprintf(os.Stderr, "hawkeye-sim: -host-anomaly %q (want slow-receiver, cache-thrash or pause-storm)\n", *hostAnomaly)
			exit(1)
		}
		*scenario = name
	}

	if *sweep != "" {
		runSweep(*sweep, *scenario, *seed, *trials, *parallel)
		exit(0)
	}

	cfg := experiments.DefaultTrialConfig(*scenario, *seed)
	cfg.DisableHostAgents = *noHostAgents
	if *load >= 0 {
		cfg.Load = *load
	}
	if *epochBits != 0 {
		cfg.EpochBits = *epochBits
	}
	if *factor != 0 {
		cfg.RTTFactor = *factor
	}
	if *chaosSpec != "" {
		sched, err := chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-sim: -chaos:", err)
			exit(1)
		}
		cfg.Chaos = sched
		cfg.ChaosSeed = *chaosSeed
	}

	tr, err := experiments.RunTrial(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-sim:", err)
		exit(1)
	}

	fmt.Printf("scenario %s (seed %d): anomaly at %v\n", *scenario, *seed, tr.GT.AnomalyAt)
	fmt.Printf("detected=%v correct=%v (%s)\n", tr.Score.Detected, tr.Score.Correct, tr.Score.Reason)
	if tr.Chaos != nil {
		fmt.Println(tr.Chaos.Counters)
	}
	fmt.Println()

	if *verbose {
		for _, r := range tr.Results {
			fmt.Printf("--- trigger %v at %v (%s)\n", r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)
			fmt.Print(r.Diagnosis.String())
		}
		fmt.Println()
		incs := core.GroupIncidents(tr.Results, 2*sim.Millisecond)
		fmt.Printf("%d complaints -> %d incidents:\n", len(tr.Results), len(incs))
		for _, inc := range incs {
			fmt.Print(inc.String())
		}
		fmt.Println()
	}

	if tr.Score.Result != nil {
		r := tr.Score.Result
		fmt.Printf("scored diagnosis (trigger %v at %v, %s):\n",
			r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)
		fmt.Print(r.Diagnosis.String())
		if r.Detail != diagnosis.DetailUnknown {
			fmt.Printf("  cause detail: %v\n", r.Detail)
		}
		fmt.Println()
		fmt.Print(r.Graph.String())
		fmt.Printf("\ncollected %d switches; report bytes %d; diagnosis ready %v after trigger\n",
			len(r.Switches), r.ReportBytes, r.ReadyAt-r.Trigger.At)
		if *dotPath != "" {
			if err := os.WriteFile(*dotPath, []byte(r.Graph.DOT(tr.Cl.Topo)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hawkeye-sim: dot:", err)
				exit(1)
			}
			fmt.Printf("provenance graph -> %s (render with: dot -Tsvg)\n", *dotPath)
		}
	}
	if !tr.Score.Correct {
		exit(2)
	}
	exit(0)
}

// runSweep fans one figure sweep across the trial scheduler and reports
// throughput: the sweeps are embarrassingly parallel at trial
// granularity, so trials/sec is the number that tracks core count.
func runSweep(name, scenario string, seed uint64, trials, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := experiments.NewRunner(workers)
	start := time.Now()
	var (
		out fmt.Stringer
		n   int
		err error
	)
	switch name {
	case "eval":
		var run *experiments.EvalRun
		run, err = r.RunEval(trials)
		n = len(experiments.EvalScenarios()) * trials
		if err == nil {
			out = run.Fig8()
		}
	case "fig7":
		cfg := experiments.QuickFig7()
		cfg.Trials = trials
		n = len(experiments.AnomalyScenarios()) * len(cfg.EpochBits) * len(cfg.Factors) * trials
		_, out, err = r.Fig7(cfg)
	case "robustness":
		rates := []float64{0, 0.1, 0.25, 0.5}
		n = len(rates) * trials
		var curve *metrics.RobustnessCurve
		curve, err = r.RunRobustnessCurve(scenario, seed, rates, trials)
		if err == nil {
			out = curve.Table()
		}
	case "testbed":
		n = 2 * trials
		out, err = r.TestbedTable(trials)
	case "host-eval":
		var eval *experiments.HostEval
		eval, err = r.RunHostEval(trials)
		n = len(workload.MixedScenarios()) * trials
		if err == nil {
			out = eval.Table()
		}
	case "host-robustness":
		rates := []float64{0, 0.1, 0.25, 0.5}
		n = len(rates) * len(workload.MixedScenarios()) * trials
		var curve *metrics.RobustnessCurve
		curve, err = r.RunMixedRobustnessCurve(seed, rates, trials)
		if err == nil {
			out = curve.Table()
		}
	default:
		die(fmt.Errorf("unknown -sweep %q (want eval, fig7, robustness, testbed, host-eval or host-robustness)", name))
	}
	if err != nil {
		die(err)
	}
	fmt.Println(out)
	elapsed := time.Since(start)
	fmt.Printf("sweep %s: %d trials, %d workers, wall %v, %.2f trials/sec\n",
		name, n, workers, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "hawkeye-sim:", err)
	os.Exit(1)
}

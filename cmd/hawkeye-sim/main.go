// Command hawkeye-sim runs one anomaly scenario on the fat-tree K=4
// evaluation topology with Hawkeye installed, then prints the detection
// events, the heterogeneous provenance graph and the diagnosis — the
// workflow of the paper's case studies (Fig. 12).
//
// Usage:
//
//	hawkeye-sim -scenario incast-backpressure -seed 1 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hawkeye/internal/chaos"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/experiments"
	"hawkeye/internal/sim"
	"hawkeye/internal/workload"
)

func main() {
	scenario := flag.String("scenario", workload.NameIncast,
		"one of: "+strings.Join(workload.AllScenarios(), ", "))
	seed := flag.Uint64("seed", 1, "trace seed")
	load := flag.Float64("load", -1, "background load (0..1); -1 = scenario default")
	epochBits := flag.Uint("epoch-bits", 0, "log2 telemetry epoch ns (0 = default 17, ~131us)")
	factor := flag.Float64("threshold", 0, "detection threshold as xRTT (0 = scenario default)")
	verbose := flag.Bool("v", false, "print every diagnosis result, not only the scored one")
	dotPath := flag.String("dot", "", "write the scored provenance graph as Graphviz DOT to this file")
	chaosSpec := flag.String("chaos", "", "fault schedule, e.g. poll-loss=0.1,tel-loss=0.3,collect-drop=0.2 (see internal/chaos)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "fault-injection seed (0 = derive from -seed)")
	flag.Parse()

	cfg := experiments.DefaultTrialConfig(*scenario, *seed)
	if *load >= 0 {
		cfg.Load = *load
	}
	if *epochBits != 0 {
		cfg.EpochBits = *epochBits
	}
	if *factor != 0 {
		cfg.RTTFactor = *factor
	}
	if *chaosSpec != "" {
		sched, err := chaos.ParseSchedule(*chaosSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hawkeye-sim: -chaos:", err)
			os.Exit(1)
		}
		cfg.Chaos = sched
		cfg.ChaosSeed = *chaosSeed
	}

	tr, err := experiments.RunTrial(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hawkeye-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %s (seed %d): anomaly at %v\n", *scenario, *seed, tr.GT.AnomalyAt)
	fmt.Printf("detected=%v correct=%v (%s)\n", tr.Score.Detected, tr.Score.Correct, tr.Score.Reason)
	if tr.Chaos != nil {
		fmt.Println(tr.Chaos.Counters)
	}
	fmt.Println()

	if *verbose {
		for _, r := range tr.Results {
			fmt.Printf("--- trigger %v at %v (%s)\n", r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)
			fmt.Print(r.Diagnosis.String())
		}
		fmt.Println()
		incs := core.GroupIncidents(tr.Results, 2*sim.Millisecond)
		fmt.Printf("%d complaints -> %d incidents:\n", len(tr.Results), len(incs))
		for _, inc := range incs {
			fmt.Print(inc.String())
		}
		fmt.Println()
	}

	if tr.Score.Result != nil {
		r := tr.Score.Result
		fmt.Printf("scored diagnosis (trigger %v at %v, %s):\n",
			r.Trigger.Victim, r.Trigger.At, r.Trigger.Reason)
		fmt.Print(r.Diagnosis.String())
		if r.Detail != diagnosis.DetailUnknown {
			fmt.Printf("  cause detail: %v\n", r.Detail)
		}
		fmt.Println()
		fmt.Print(r.Graph.String())
		fmt.Printf("\ncollected %d switches; report bytes %d; diagnosis ready %v after trigger\n",
			len(r.Switches), r.ReportBytes, r.ReadyAt-r.Trigger.At)
		if *dotPath != "" {
			if err := os.WriteFile(*dotPath, []byte(r.Graph.DOT(tr.Cl.Topo)), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hawkeye-sim: dot:", err)
				os.Exit(1)
			}
			fmt.Printf("provenance graph -> %s (render with: dot -Tsvg)\n", *dotPath)
		}
	}
	if !tr.Score.Correct {
		os.Exit(2)
	}
}

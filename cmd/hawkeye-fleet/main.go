// Command hawkeye-fleet is the operator's window into a running
// analyzer's fleet store: query the clustered incident history, tail
// incident lifecycle events live as fabrics report complaints, probe a
// server's lifecycle health, or inspect a durable store's data
// directory offline (read-only — safe while the analyzer is down).
//
// Usage:
//
//	hawkeye-fleet -addr 127.0.0.1:9393                 # query all incidents
//	hawkeye-fleet -addr 127.0.0.1:9393 -type pfc-storm # filter by anomaly type
//	hawkeye-fleet -addr 127.0.0.1:9393 -from 1ms -to 5ms
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail           # live subscription
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail -n 10     # stop after 10 events
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail -summary  # live rollup summaries
//	hawkeye-fleet -data-dir /var/lib/hawkeye           # offline inspection
//	hawkeye-fleet health -addr 127.0.0.1:9393          # lifecycle + load probe
//	hawkeye-fleet rollups -addr 127.0.0.1:9393         # windowed rollups
//	hawkeye-fleet rollups -sliding 8 -level switch -prefix podA/pod1
//
// Against a sharded cluster, -cluster replaces -addr with the shard
// set (name=addr pairs, or bare addresses auto-named shard-0..) and
// every mode fans out through the front door: incident queries merge
// in first-seen order, rollup windows merge by sketch state, tails
// interleave per-shard events, and health renders a per-shard table
// with replication role, lag and last checkpoint:
//
//	hawkeye-fleet -cluster shard-a=host1:9401,shard-b=host2:9401
//	hawkeye-fleet rollups -cluster host1:9401,host2:9401
//	hawkeye-fleet health -cluster shard-a=host1:9401,shard-b=host2:9401
//
// -ring-seed/-vnodes must match what the writers routing fabrics used,
// or fabric-scoped queries ask the wrong shard.
//
// Tails survive analyzer restarts: on a drain notice or connection
// loss the subscription is re-established with capped exponential
// backoff, and the tail resumes on the new server. Events emitted
// while disconnected are not replayed — query the store for the gap.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleet"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "health" {
		healthCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "rollups" {
		rollupsCmd(os.Args[2:])
		return
	}

	addr := flag.String("addr", "127.0.0.1:9393", "analyzer address")
	cluster := flag.String("cluster", "", "shard set for fan-out: name=addr,... or bare addresses (replaces -addr)")
	ringSeed := flag.Uint64("ring-seed", 0, "consistent-hash ring seed; must match the writers routing fabrics")
	vnodes := flag.Int("vnodes", 0, "ring virtual nodes per shard (0 = default)")
	dataDir := flag.String("data-dir", "", "inspect a durable store directory offline instead of dialing a server")
	tail := flag.Bool("tail", false, "subscribe and stream incident events instead of querying")
	summary := flag.Bool("summary", false, "with -tail: stream live rollup summaries instead of the incident firehose")
	closedOnly := flag.Bool("closed-only", false, "with -tail -summary: only final window summaries")
	n := flag.Int("n", 0, "with -tail: exit after this many events (0 = forever)")
	fabric := flag.String("fabric", "", "filter: fabric name")
	typ := flag.String("type", "", "filter: anomaly type (e.g. pfc-storm)")
	node := flag.Int("node", -1, "filter: initial congestion node ID (-1 = any)")
	from := flag.Duration("from", 0, "filter: span start on the fabric clock (e.g. 1ms)")
	to := flag.Duration("to", 0, "filter: span end (0 = unbounded)")
	limit := flag.Int("limit", 0, "query: cap the incident count (0 = all)")
	flag.Parse()
	rejectPositional(flag.Args())

	if *dataDir != "" {
		if *tail {
			fail(errors.New("-tail needs a live server, not -data-dir"))
		}
		offlineQuery(*dataDir, *fabric, *typ, *node, int64(*from), int64(*to), *limit)
		return
	}
	if *summary && !*tail {
		fail(errors.New("-summary needs -tail (use the rollups subcommand for queries)"))
	}

	if *cluster != "" {
		fd := dialCluster(*cluster, *vnodes, *ringSeed)
		defer fd.Close()
		if *tail {
			if *summary {
				fail(errors.New("-summary tails are per-shard; use `rollups -cluster` for merged windows"))
			}
			clusterTail(fd, wire.SubscribeRequest{Fabric: *fabric, Type: *typ, Node: *node}, *n)
			return
		}
		q := wire.IncidentQuery{
			Fabric: *fabric, Type: *typ, Node: *node,
			FromNS: int64(*from), ToNS: int64(*to), Limit: *limit,
		}
		incs, shardErrs, err := fd.QueryIncidents(q)
		if err != nil {
			fail(err)
		}
		warnShards(shardErrs)
		if len(incs) == 0 {
			fmt.Println("no incidents match")
			return
		}
		for i := range incs {
			printIncident(&incs[i])
		}
		fmt.Printf("%d incident(s) across %d shard(s)\n", len(incs), len(fd.Shards())-len(shardErrs))
		return
	}

	c, err := analyzd.DialOperatorRetry(*addr, tailRetryConfig())
	if err != nil {
		fail(err)
	}
	defer c.Close()

	if *tail {
		if *summary {
			if err := c.SubscribeRollups(wire.RollupSubscribeRequest{ClosedOnly: *closedOnly}); err != nil {
				fail(err)
			}
			fmt.Printf("tailing rollup summaries on %s (ctrl-c to stop)\n", *addr)
			tailLoop(c, *n, func() error {
				ev, err := c.NextRollup()
				if err != nil {
					return err
				}
				printRollupEvent(ev)
				return nil
			})
			return
		}
		req := wire.SubscribeRequest{Fabric: *fabric, Type: *typ, Node: *node}
		if err := c.Subscribe(req); err != nil {
			fail(err)
		}
		fmt.Printf("tailing incidents on %s (ctrl-c to stop)\n", *addr)
		tailLoop(c, *n, func() error {
			ev, err := c.NextEvent()
			if err != nil {
				return err
			}
			printEvent(ev)
			return nil
		})
		return
	}

	q := wire.IncidentQuery{
		Fabric: *fabric,
		Type:   *typ,
		Node:   *node,
		FromNS: int64(*from),
		ToNS:   int64(*to),
		Limit:  *limit,
	}
	incs, err := c.QueryIncidents(q)
	if err != nil {
		fail(err)
	}
	if len(incs) == 0 {
		fmt.Println("no incidents match")
		return
	}
	for i := range incs {
		printIncident(&incs[i])
	}
	fmt.Printf("%d incident(s)\n", len(incs))
}

// parseCluster turns "-cluster a=h1:9401,b=h2:9401" (or bare addresses,
// auto-named shard-0.. in listed order) into shard specs.
func parseCluster(s string) ([]fleet.ShardSpec, error) {
	parts := strings.Split(s, ",")
	specs := make([]fleet.ShardSpec, 0, len(parts))
	named := false
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if name, addr, ok := strings.Cut(p, "="); ok {
			named = true
			specs = append(specs, fleet.ShardSpec{Name: name, Addr: addr})
			continue
		}
		if named {
			return nil, fmt.Errorf("mix of named and bare shards in %q", s)
		}
		specs = append(specs, fleet.ShardSpec{Name: fmt.Sprintf("shard-%d", i), Addr: p})
	}
	if len(specs) == 0 {
		return nil, errors.New("-cluster lists no shards")
	}
	return specs, nil
}

func dialCluster(cluster string, vnodes int, seed uint64) *fleet.Frontdoor {
	specs, err := parseCluster(cluster)
	if err != nil {
		fail(err)
	}
	fd, err := fleet.NewFrontdoor(specs, vnodes, seed)
	if err != nil {
		fail(err)
	}
	return fd
}

// warnShards surfaces partial fan-out failures without failing the
// query: the merged answer below it covers the shards that did reply.
func warnShards(errs []fleet.ShardError) {
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "hawkeye-fleet: warning: shard %s unavailable: %v\n", e.Shard, e.Err)
	}
}

// clusterTail streams the merged incident tail, each event tagged with
// its source shard.
func clusterTail(fd *fleet.Frontdoor, req wire.SubscribeRequest, n int) {
	tail, shardErrs, err := fd.Subscribe(req, 256)
	if err != nil {
		fail(err)
	}
	defer tail.Close()
	warnShards(shardErrs)
	fmt.Printf("tailing incidents across %d shard(s) (ctrl-c to stop)\n", len(fd.Shards())-len(shardErrs))
	i := 0
	for ev := range tail.Events() {
		fmt.Printf("[%s] ", ev.Shard)
		printEvent(&ev.Event)
		if i++; n > 0 && i >= n {
			return
		}
	}
	fmt.Println("every shard session ended")
}

// tailRetryConfig is patient: a tail is a long-lived watch, so it
// rides out an analyzer restart (drain + replay can take seconds)
// instead of giving up on the reporting client's tight schedule.
func tailRetryConfig() analyzd.RetryConfig {
	rc := analyzd.DefaultRetryConfig()
	rc.MaxAttempts = 20
	rc.BaseBackoff = 100 * time.Millisecond
	rc.MaxBackoff = 3 * time.Second
	return rc
}

// tailLoop pumps events through next, resubscribing with backoff when
// the server drains or the connection drops, so the tail survives an
// analyzer restart. Only a failed resubscription ends the loop.
func tailLoop(c *analyzd.Client, n int, next func() error) {
	for i := 0; n == 0 || i < n; i++ {
		if err := next(); err != nil {
			if errors.Is(err, analyzd.ErrServerDraining) {
				fmt.Println("server draining; reconnecting...")
			} else {
				fmt.Printf("tail interrupted (%v); reconnecting...\n", err)
			}
			if err := c.Resubscribe(); err != nil {
				fail(fmt.Errorf("resubscribe: %w", err))
			}
			fmt.Println("subscription restored")
			i-- // the failed read produced no event
			continue
		}
	}
}

// rejectPositional fails on leftover arguments: subcommands go before
// flags, so `hawkeye-fleet -addr X rollups` would otherwise silently
// run the default incident query instead of the rollups command.
func rejectPositional(rest []string) {
	if len(rest) > 0 {
		fail(fmt.Errorf("unexpected argument %q (subcommands go first: hawkeye-fleet %s -addr ...)", rest[0], rest[0]))
	}
}

// rollupsCmd queries the analyzer's windowed rollups.
func rollupsCmd(args []string) {
	fs := flag.NewFlagSet("rollups", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9393", "analyzer address")
	cluster := fs.String("cluster", "", "shard set for fan-out: name=addr,... or bare addresses (replaces -addr)")
	ringSeed := fs.Uint64("ring-seed", 0, "consistent-hash ring seed; must match the writers routing fabrics")
	vnodes := fs.Int("vnodes", 0, "ring virtual nodes per shard (0 = default)")
	windows := fs.Int("windows", 0, "return only the most recent N windows (0 = all retained)")
	sliding := fs.Int("sliding", 0, "also merge the last N windows into one sliding view")
	level := fs.String("level", "", "drill down to one hierarchy level: fabric, pod, switch or port")
	prefix := fs.String("prefix", "", "drill down to keys under this path prefix (e.g. fabA/pod2)")
	closed := fs.Bool("closed-only", false, "exclude still-open windows")
	fs.Parse(args)
	rejectPositional(fs.Args())

	q := wire.RollupQuery{
		Windows:    *windows,
		Sliding:    *sliding,
		Level:      *level,
		Prefix:     *prefix,
		ClosedOnly: *closed,
	}
	var res *wire.RollupResult
	var err error
	if *cluster != "" {
		fd := dialCluster(*cluster, *vnodes, *ringSeed)
		defer fd.Close()
		var shardErrs []fleet.ShardError
		res, shardErrs, err = fd.QueryRollups(q)
		if err != nil {
			fail(err)
		}
		warnShards(shardErrs)
	} else {
		c, err2 := analyzd.DialOperator(*addr)
		if err2 != nil {
			fail(err2)
		}
		defer c.Close()
		res, err = c.QueryRollups(q)
		if err != nil {
			fail(err)
		}
	}
	if len(res.Windows) == 0 {
		fmt.Println("no rollup windows")
		return
	}
	for i := range res.Windows {
		printSummary(&res.Windows[i])
	}
	fmt.Printf("%d window(s)\n", len(res.Windows))
	if res.Sliding != nil {
		fmt.Println("sliding view:")
		printSummary(res.Sliding)
	}
}

// healthCmd probes a server's lifecycle state and load counters.
func healthCmd(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9393", "analyzer address")
	cluster := fs.String("cluster", "", "shard set: name=addr,... or bare addresses; renders a per-shard table")
	ringSeed := fs.Uint64("ring-seed", 0, "consistent-hash ring seed")
	vnodes := fs.Int("vnodes", 0, "ring virtual nodes per shard (0 = default)")
	fs.Parse(args)
	rejectPositional(fs.Args())

	if *cluster != "" {
		fd := dialCluster(*cluster, *vnodes, *ringSeed)
		defer fd.Close()
		clusterHealth(fd)
		return
	}

	c, err := analyzd.DialOperator(*addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()
	h, err := c.Health()
	if err != nil {
		fail(err)
	}
	store := "in-memory"
	if h.Durable {
		store = "durable (WAL + snapshots)"
	}
	fmt.Printf("state: %s\n", h.State)
	fmt.Printf("store: %s\n", store)
	fmt.Printf("ingest load: %.0f%% (%d ingested, %d dropped)\n", h.Load*100, h.Ingested, h.Dropped)
	fmt.Printf("sessions: %d, diagnoses: %d, open incidents: %d\n",
		h.Sessions, h.Diagnoses, h.OpenIncidents)
	fmt.Printf("shed: %d subscriptions, %d queries, %d rollup subscriptions\n",
		h.ShedSubscriptions, h.ShedQueries, h.ShedRollups)
	fmt.Printf("rollups: %d windows open, %d closed, %d sketch evictions, %d bytes\n",
		h.RollupWindowsOpen, h.RollupWindowsClosed, h.RollupEvictions, h.RollupBytes)
	if h.WALErrors > 0 {
		fmt.Printf("WARNING: %d WAL errors (records kept in memory only)\n", h.WALErrors)
	}
}

// clusterHealth renders the per-shard table: identity, lifecycle
// state, replication role, epoch and lag, and the last durable
// checkpoint. A dead shard is a row, not an error — the table is how
// an operator finds which follower to promote. Exits non-zero when a
// shard is down, fenced, or its follower mirrors a different epoch
// than the primary holds: a split epoch view means a failover or
// cutover is half-applied, and promoting the follower now would fork
// history.
func clusterHealth(fd *fleet.Frontdoor) {
	rows := fd.Health()
	w := func(cols ...string) {
		fmt.Printf("%-12s %-22s %-9s %-9s %8s %10s %10s %8s %10s %s\n",
			cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6], cols[7], cols[8], cols[9])
	}
	w("SHARD", "ADDR", "STATE", "ROLE", "EPOCH", "SEQ", "FOLLOWER", "LAG", "LASTCKPT", "LOAD")
	healthy := 0
	split := 0
	for _, row := range rows {
		if row.Err != nil {
			w(row.Spec.Name, row.Spec.Addr, "down", "-", "-", "-", "-", "-", "-", row.Err.Error())
			continue
		}
		info := row.Info
		epoch := fmt.Sprintf("%d", info.Epoch)
		ok := true
		if info.Fenced {
			epoch += "!fenced"
			ok = false
		}
		if info.Replicas > 0 && info.FollowerEpoch != info.Epoch {
			epoch += fmt.Sprintf("!=%d", info.FollowerEpoch)
			ok = false
		}
		if ok {
			healthy++
		} else {
			split++
		}
		load := fmt.Sprintf("%.0f%% (%d open inc)", row.Health.Load*100, row.Health.OpenIncidents)
		follower := "-"
		lag := "-"
		if info.Replicas > 0 {
			follower = fmt.Sprintf("%d", info.FollowerSeq)
			lag = fmt.Sprintf("%d", info.Lag)
		}
		w(row.Spec.Name, row.Spec.Addr, row.Health.State, info.Role, epoch,
			fmt.Sprintf("%d", info.Seq), follower, lag,
			fmt.Sprintf("%d", info.LastSnapshotSeq), load)
	}
	fmt.Printf("%d/%d shard(s) healthy\n", healthy, len(rows))
	if split > 0 {
		fmt.Printf("%d shard(s) fenced or with a split epoch view\n", split)
	}
	if healthy < len(rows) {
		os.Exit(1)
	}
}

// offlineQuery opens a durable store directory read-only and prints the
// matching incidents — the post-mortem path when the analyzer is down.
func offlineQuery(dir, fabric, typ string, node int, fromNS, toNS int64, limit int) {
	st, err := fleetstore.Open(dir, fleetstore.Config{ReadOnly: true})
	if err != nil {
		fail(err)
	}
	rec := st.Recovery()
	fmt.Printf("store %s: %d records replayed", dir, st.ReplayedRecords())
	if rec.Torn {
		fmt.Printf(" (torn tail: %d bytes truncated, %d segments dropped)",
			rec.TornBytes, rec.DroppedSegments)
	}
	fmt.Println()

	q := fleetstore.Query{
		Fabric: fabric,
		Node:   fleetstore.AnyNode,
		From:   sim.Time(fromNS),
		To:     sim.Time(toNS),
		Limit:  limit,
	}
	if node >= 0 {
		q.Node = topo.NodeID(node)
	}
	if typ != "" {
		t, ok := diagnosis.ParseAnomalyType(typ)
		if !ok {
			fail(fmt.Errorf("unknown anomaly type %q", typ))
		}
		q.Types = []diagnosis.AnomalyType{t}
	}
	incs := st.Incidents(q)
	if len(incs) == 0 {
		fmt.Println("no incidents match")
		return
	}
	for i := range incs {
		inc := &incs[i]
		w := wire.FleetIncident{
			ID:       inc.ID,
			Type:     inc.Type.String(),
			FirstNS:  int64(inc.First),
			LastNS:   int64(inc.Last),
			Fabrics:  inc.Fabrics,
			Culprits: inc.Culprits,
			Resolved: inc.Resolved,
			Summary:  inc.Summary(),
			Constant: inc.Constant,
			Varying:  inc.Varying,
		}
		printIncident(&w)
	}
	fmt.Printf("%d incident(s)\n", len(incs))
}

func printRollupEvent(ev *wire.RollupEvent) {
	s := &ev.Summary
	fmt.Printf("[%s] %v .. %v  %d record(s)  %s\n",
		strings.ToUpper(ev.Kind), sim.Time(s.StartNS), sim.Time(s.EndNS), s.Records, s.Headline)
}

// printSummary renders one rollup window: headline, attribute counts,
// per-level heavy hitters and the latency/confidence distributions.
func printSummary(s *wire.RollupSummary) {
	state := "open"
	if s.Closed {
		state = "closed"
	}
	fmt.Printf("window %v .. %v (%s) %d record(s)  %s\n",
		sim.Time(s.StartNS), sim.Time(s.EndNS), state, s.Records, s.Headline)
	printCounts("types", s.ByType)
	printCounts("causes", s.ByCause)
	printCounts("confidence", s.ByConfidence)
	for _, level := range []string{"fabric", "pod", "switch", "port"} {
		hits := s.Top[level]
		if len(hits) == 0 {
			continue
		}
		parts := make([]string, len(hits))
		for i, h := range hits {
			parts[i] = fmt.Sprintf("%s=%d(±%d)", h.Key, h.Count, h.Err)
		}
		fmt.Printf("    top %-6s %s\n", level, strings.Join(parts, " "))
	}
	if s.StallNS.Count > 0 {
		fmt.Printf("    stall p50=%v p90=%v p99=%v max=%v\n",
			time.Duration(s.StallNS.P50), time.Duration(s.StallNS.P90),
			time.Duration(s.StallNS.P99), time.Duration(s.StallNS.Max))
	}
	if s.Score.Count > 0 {
		fmt.Printf("    score p50=%.2f p90=%.2f max=%.2f\n", s.Score.P50, s.Score.P90, s.Score.Max)
	}
	fmt.Printf("    sketch: %d bytes, %d evictions\n", s.Bytes, s.Evictions)
}

func printCounts(label string, m map[string]uint64) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	fmt.Printf("    %-10s %s\n", label, strings.Join(parts, " "))
}

func printEvent(ev *wire.IncidentEvent) {
	inc := &ev.Incident
	fmt.Printf("[%s] #%d %s\n", strings.ToUpper(ev.Kind), inc.ID, inc.Summary)
}

func printIncident(inc *wire.FleetIncident) {
	state := "open"
	if inc.Resolved {
		state = "resolved"
	}
	fmt.Printf("#%d (%s) %v .. %v  %s\n",
		inc.ID, state, sim.Time(inc.FirstNS), sim.Time(inc.LastNS), inc.Summary)
	if len(inc.Fabrics) > 0 {
		fmt.Printf("    fabrics: %s\n", strings.Join(inc.Fabrics, ", "))
	}
	if len(inc.Culprits) > 0 {
		fmt.Printf("    culprits: %s\n", strings.Join(inc.Culprits, ", "))
	}
	// The attribute partition: what every complaint agreed on, and
	// which dimensions spread.
	for k, v := range inc.Constant {
		fmt.Printf("    constant %s = %s\n", k, v)
	}
	for k, vals := range inc.Varying {
		fmt.Printf("    varying  %s across %d values\n", k, len(vals))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hawkeye-fleet:", err)
	os.Exit(1)
}

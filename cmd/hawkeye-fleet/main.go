// Command hawkeye-fleet is the operator's window into a running
// analyzer's fleet store: query the clustered incident history, tail
// incident lifecycle events live as fabrics report complaints, probe a
// server's lifecycle health, or inspect a durable store's data
// directory offline (read-only — safe while the analyzer is down).
//
// Usage:
//
//	hawkeye-fleet -addr 127.0.0.1:9393                 # query all incidents
//	hawkeye-fleet -addr 127.0.0.1:9393 -type pfc-storm # filter by anomaly type
//	hawkeye-fleet -addr 127.0.0.1:9393 -from 1ms -to 5ms
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail           # live subscription
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail -n 10     # stop after 10 events
//	hawkeye-fleet -data-dir /var/lib/hawkeye           # offline inspection
//	hawkeye-fleet health -addr 127.0.0.1:9393          # lifecycle + load probe
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "health" {
		healthCmd(os.Args[2:])
		return
	}

	addr := flag.String("addr", "127.0.0.1:9393", "analyzer address")
	dataDir := flag.String("data-dir", "", "inspect a durable store directory offline instead of dialing a server")
	tail := flag.Bool("tail", false, "subscribe and stream incident events instead of querying")
	n := flag.Int("n", 0, "with -tail: exit after this many events (0 = forever)")
	fabric := flag.String("fabric", "", "filter: fabric name")
	typ := flag.String("type", "", "filter: anomaly type (e.g. pfc-storm)")
	node := flag.Int("node", -1, "filter: initial congestion node ID (-1 = any)")
	from := flag.Duration("from", 0, "filter: span start on the fabric clock (e.g. 1ms)")
	to := flag.Duration("to", 0, "filter: span end (0 = unbounded)")
	limit := flag.Int("limit", 0, "query: cap the incident count (0 = all)")
	flag.Parse()

	if *dataDir != "" {
		if *tail {
			fail(errors.New("-tail needs a live server, not -data-dir"))
		}
		offlineQuery(*dataDir, *fabric, *typ, *node, int64(*from), int64(*to), *limit)
		return
	}

	c, err := analyzd.DialOperator(*addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	if *tail {
		req := wire.SubscribeRequest{Fabric: *fabric, Type: *typ, Node: *node}
		if err := c.Subscribe(req); err != nil {
			fail(err)
		}
		fmt.Printf("tailing incidents on %s (ctrl-c to stop)\n", *addr)
		for i := 0; *n == 0 || i < *n; i++ {
			ev, err := c.NextEvent()
			if err != nil {
				if errors.Is(err, analyzd.ErrServerDraining) {
					fmt.Println("server draining; tail closed")
					return
				}
				fail(err)
			}
			printEvent(ev)
		}
		return
	}

	q := wire.IncidentQuery{
		Fabric: *fabric,
		Type:   *typ,
		Node:   *node,
		FromNS: int64(*from),
		ToNS:   int64(*to),
		Limit:  *limit,
	}
	incs, err := c.QueryIncidents(q)
	if err != nil {
		fail(err)
	}
	if len(incs) == 0 {
		fmt.Println("no incidents match")
		return
	}
	for i := range incs {
		printIncident(&incs[i])
	}
	fmt.Printf("%d incident(s)\n", len(incs))
}

// healthCmd probes a server's lifecycle state and load counters.
func healthCmd(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9393", "analyzer address")
	fs.Parse(args)

	c, err := analyzd.DialOperator(*addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()
	h, err := c.Health()
	if err != nil {
		fail(err)
	}
	store := "in-memory"
	if h.Durable {
		store = "durable (WAL + snapshots)"
	}
	fmt.Printf("state: %s\n", h.State)
	fmt.Printf("store: %s\n", store)
	fmt.Printf("ingest load: %.0f%% (%d ingested, %d dropped)\n", h.Load*100, h.Ingested, h.Dropped)
	fmt.Printf("sessions: %d, diagnoses: %d, open incidents: %d\n",
		h.Sessions, h.Diagnoses, h.OpenIncidents)
	fmt.Printf("shed: %d subscriptions, %d queries\n", h.ShedSubscriptions, h.ShedQueries)
	if h.WALErrors > 0 {
		fmt.Printf("WARNING: %d WAL errors (records kept in memory only)\n", h.WALErrors)
	}
}

// offlineQuery opens a durable store directory read-only and prints the
// matching incidents — the post-mortem path when the analyzer is down.
func offlineQuery(dir, fabric, typ string, node int, fromNS, toNS int64, limit int) {
	st, err := fleetstore.Open(dir, fleetstore.Config{ReadOnly: true})
	if err != nil {
		fail(err)
	}
	rec := st.Recovery()
	fmt.Printf("store %s: %d records replayed", dir, st.ReplayedRecords())
	if rec.Torn {
		fmt.Printf(" (torn tail: %d bytes truncated, %d segments dropped)",
			rec.TornBytes, rec.DroppedSegments)
	}
	fmt.Println()

	q := fleetstore.Query{
		Fabric: fabric,
		Node:   fleetstore.AnyNode,
		From:   sim.Time(fromNS),
		To:     sim.Time(toNS),
		Limit:  limit,
	}
	if node >= 0 {
		q.Node = topo.NodeID(node)
	}
	if typ != "" {
		t, ok := diagnosis.ParseAnomalyType(typ)
		if !ok {
			fail(fmt.Errorf("unknown anomaly type %q", typ))
		}
		q.Types = []diagnosis.AnomalyType{t}
	}
	incs := st.Incidents(q)
	if len(incs) == 0 {
		fmt.Println("no incidents match")
		return
	}
	for i := range incs {
		inc := &incs[i]
		w := wire.FleetIncident{
			ID:       inc.ID,
			Type:     inc.Type.String(),
			FirstNS:  int64(inc.First),
			LastNS:   int64(inc.Last),
			Fabrics:  inc.Fabrics,
			Culprits: inc.Culprits,
			Resolved: inc.Resolved,
			Summary:  inc.Summary(),
			Constant: inc.Constant,
			Varying:  inc.Varying,
		}
		printIncident(&w)
	}
	fmt.Printf("%d incident(s)\n", len(incs))
}

func printEvent(ev *wire.IncidentEvent) {
	inc := &ev.Incident
	fmt.Printf("[%s] #%d %s\n", strings.ToUpper(ev.Kind), inc.ID, inc.Summary)
}

func printIncident(inc *wire.FleetIncident) {
	state := "open"
	if inc.Resolved {
		state = "resolved"
	}
	fmt.Printf("#%d (%s) %v .. %v  %s\n",
		inc.ID, state, sim.Time(inc.FirstNS), sim.Time(inc.LastNS), inc.Summary)
	if len(inc.Fabrics) > 0 {
		fmt.Printf("    fabrics: %s\n", strings.Join(inc.Fabrics, ", "))
	}
	if len(inc.Culprits) > 0 {
		fmt.Printf("    culprits: %s\n", strings.Join(inc.Culprits, ", "))
	}
	// The attribute partition: what every complaint agreed on, and
	// which dimensions spread.
	for k, v := range inc.Constant {
		fmt.Printf("    constant %s = %s\n", k, v)
	}
	for k, vals := range inc.Varying {
		fmt.Printf("    varying  %s across %d values\n", k, len(vals))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hawkeye-fleet:", err)
	os.Exit(1)
}

// Command hawkeye-fleet is the operator's window into a running
// analyzer's fleet store: query the clustered incident history, or tail
// incident lifecycle events live as fabrics report complaints.
//
// Usage:
//
//	hawkeye-fleet -addr 127.0.0.1:9393                 # query all incidents
//	hawkeye-fleet -addr 127.0.0.1:9393 -type pfc-storm # filter by anomaly type
//	hawkeye-fleet -addr 127.0.0.1:9393 -from 1ms -to 5ms
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail           # live subscription
//	hawkeye-fleet -addr 127.0.0.1:9393 -tail -n 10     # stop after 10 events
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/sim"
	"hawkeye/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9393", "analyzer address")
	tail := flag.Bool("tail", false, "subscribe and stream incident events instead of querying")
	n := flag.Int("n", 0, "with -tail: exit after this many events (0 = forever)")
	fabric := flag.String("fabric", "", "filter: fabric name")
	typ := flag.String("type", "", "filter: anomaly type (e.g. pfc-storm)")
	node := flag.Int("node", -1, "filter: initial congestion node ID (-1 = any)")
	from := flag.Duration("from", 0, "filter: span start on the fabric clock (e.g. 1ms)")
	to := flag.Duration("to", 0, "filter: span end (0 = unbounded)")
	limit := flag.Int("limit", 0, "query: cap the incident count (0 = all)")
	flag.Parse()

	c, err := analyzd.DialOperator(*addr)
	if err != nil {
		fail(err)
	}
	defer c.Close()

	if *tail {
		req := wire.SubscribeRequest{Fabric: *fabric, Type: *typ, Node: *node}
		if err := c.Subscribe(req); err != nil {
			fail(err)
		}
		fmt.Printf("tailing incidents on %s (ctrl-c to stop)\n", *addr)
		for i := 0; *n == 0 || i < *n; i++ {
			ev, err := c.NextEvent()
			if err != nil {
				fail(err)
			}
			printEvent(ev)
		}
		return
	}

	q := wire.IncidentQuery{
		Fabric: *fabric,
		Type:   *typ,
		Node:   *node,
		FromNS: int64(*from),
		ToNS:   int64(*to),
		Limit:  *limit,
	}
	incs, err := c.QueryIncidents(q)
	if err != nil {
		fail(err)
	}
	if len(incs) == 0 {
		fmt.Println("no incidents match")
		return
	}
	for i := range incs {
		printIncident(&incs[i])
	}
	fmt.Printf("%d incident(s)\n", len(incs))
}

func printEvent(ev *wire.IncidentEvent) {
	inc := &ev.Incident
	fmt.Printf("[%s] #%d %s\n", strings.ToUpper(ev.Kind), inc.ID, inc.Summary)
}

func printIncident(inc *wire.FleetIncident) {
	state := "open"
	if inc.Resolved {
		state = "resolved"
	}
	fmt.Printf("#%d (%s) %v .. %v  %s\n",
		inc.ID, state, sim.Time(inc.FirstNS), sim.Time(inc.LastNS), inc.Summary)
	if len(inc.Fabrics) > 0 {
		fmt.Printf("    fabrics: %s\n", strings.Join(inc.Fabrics, ", "))
	}
	if len(inc.Culprits) > 0 {
		fmt.Printf("    culprits: %s\n", strings.Join(inc.Culprits, ", "))
	}
	// The attribute partition: what every complaint agreed on, and
	// which dimensions spread.
	for k, v := range inc.Constant {
		fmt.Printf("    constant %s = %s\n", k, v)
	}
	for k, vals := range inc.Varying {
		fmt.Printf("    varying  %s across %d values\n", k, len(vals))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hawkeye-fleet:", err)
	os.Exit(1)
}

// Command hawkeye-perf is the regression-guarded performance harness:
// it runs the hot-path and sweep benchmarks in-process, gates them
// against a committed baseline (BENCH_experiments.json), and rewrites
// the baseline on request.
//
//	hawkeye-perf -baseline BENCH_experiments.json          # run + gate
//	hawkeye-perf -out BENCH_experiments.json               # run + write
//	hawkeye-perf -bench 'sim/' -v                          # subset
//
// The gate fails (exit 1) when any benchmark's ns/op grew by more than
// -gate vs the baseline, or when a zero-alloc path started allocating.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"

	"hawkeye/internal/perf"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "baseline report to gate against (skipped if missing)")
		out      = flag.String("out", "", "write the measured report to this path")
		gate     = flag.Float64("gate", 0.25, "fractional ns/op regression tolerance")
		filter   = flag.String("bench", "", "regexp selecting benchmark names to run")
		trials   = flag.Int("trials", 1, "seeds per scenario for the EvalRun sweeps")
		workers  = flag.Int("parallel", 0, "pool size for the parallel sweep (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	cases := perf.Cases(perf.Options{EvalTrials: *trials, Workers: *workers})
	if *list {
		for _, c := range cases {
			fmt.Println(c.Name)
		}
		return
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fatal("bad -bench regexp: %v", err)
		}
	}

	rep := perf.NewReport()
	fmt.Printf("hawkeye-perf: %s, GOMAXPROCS=%d\n", runtime.Version(), runtime.GOMAXPROCS(0))
	for _, c := range cases {
		if re != nil && !re.MatchString(c.Name) {
			continue
		}
		res := c.Run()
		rep.Results = append(rep.Results, res)
		fmt.Printf("  %-32s %12.1f ns/op %8.0f allocs/op", res.Name, res.NsPerOp, res.AllocsPerOp)
		if tps := res.Metrics["trials_per_sec"]; tps > 0 {
			fmt.Printf(" %8.2f trials/sec", tps)
		}
		fmt.Println()
	}
	perf.AddDerived(rep)
	if p := rep.Find("experiments/eval_run_parallel"); p != nil {
		if s := p.Metrics["speedup_vs_serial"]; s > 0 {
			fmt.Printf("  parallel sweep speedup vs serial: %.2fx\n", s)
		}
	}

	failed := false
	if *baseline != "" {
		base, err := perf.LoadReport(*baseline)
		switch {
		case os.IsNotExist(err):
			fmt.Printf("no baseline at %s; gate skipped\n", *baseline)
		case err != nil:
			fatal("%v", err)
		default:
			regs, err := perf.Compare(base, rep, *gate)
			if err != nil {
				fatal("%v", err)
			}
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
			}
			if len(regs) > 0 {
				failed = true
			} else {
				fmt.Printf("gate passed (tolerance %.0f%%, baseline %s)\n", *gate*100, *baseline)
			}
		}
	}
	if *out != "" && !failed {
		if err := rep.WriteFile(*out); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hawkeye-perf: "+format+"\n", args...)
	os.Exit(1)
}
